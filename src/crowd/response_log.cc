#include "crowd/response_log.h"

#include <algorithm>
#include <bit>
#include <string>

#include "common/logging.h"
#include "common/string_util.h"
#include "telemetry/metric_names.h"

namespace dqm::crowd {

namespace {

/// splitmix64 finalizer — cheap, well-mixed hash for the packed pair key.
inline uint64_t MixPair(uint32_t worker, uint32_t item) {
  uint64_t x = (static_cast<uint64_t>(worker) << 32) | item;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Smallest item count one stripe may own: a full cache line of uint32
/// tally counters. The tally columns are cache-line-aligned at their base
/// (CacheAlignedAllocator), so stripes own fully disjoint lines of the
/// shared positive_/total_ columns and neighboring committers never
/// false-share.
constexpr size_t kStripeGranuleItems = kCacheLineBytes / sizeof(uint32_t);

}  // namespace

void CompactedVoteStore::Add(uint32_t worker, uint32_t item, Vote vote) {
  size_t slot = FindOrInsertSlot(worker, item);
  if (vote == Vote::kDirty) {
    ++dirty_[slot];
  } else {
    ++clean_[slot];
  }
}

void CompactedVoteStore::Clear() {
  workers_.clear();
  items_.clear();
  dirty_.clear();
  clean_.clear();
  std::fill(index_.begin(), index_.end(), kEmptySlot);
}

size_t CompactedVoteStore::MemoryBytes() const {
  return (workers_.capacity() + items_.capacity() + dirty_.capacity() +
          clean_.capacity() + index_.capacity()) *
         sizeof(uint32_t);
}

size_t CompactedVoteStore::FindOrInsertSlot(uint32_t worker, uint32_t item) {
  // Grow at 3/4 load (and on first use) so probe chains stay short.
  if (index_.empty() || workers_.size() + 1 > index_.size() / 4 * 3) {
    GrowIndex();
  }
  const size_t mask = index_.size() - 1;
  size_t bucket = MixPair(worker, item) & mask;
  for (;;) {
    uint32_t slot = index_[bucket];
    if (slot == kEmptySlot) {
      uint32_t fresh = static_cast<uint32_t>(workers_.size());
      // invariant: slot ids stay below the kEmptySlot sentinel by sizing.
      DQM_CHECK_LT(fresh, kEmptySlot) << "compacted store slot id overflow";
      index_[bucket] = fresh;
      workers_.push_back(worker);
      items_.push_back(item);
      dirty_.push_back(0);
      clean_.push_back(0);
      return fresh;
    }
    if (workers_[slot] == worker && items_[slot] == item) return slot;
    bucket = (bucket + 1) & mask;
  }
}

void CompactedVoteStore::GrowIndex() {
  size_t capacity = index_.empty() ? 64 : index_.size() * 2;
  index_.assign(capacity, kEmptySlot);
  const size_t mask = capacity - 1;
  for (uint32_t slot = 0; slot < workers_.size(); ++slot) {
    size_t bucket = MixPair(workers_[slot], items_[slot]) & mask;
    while (index_[bucket] != kEmptySlot) bucket = (bucket + 1) & mask;
    index_[bucket] = slot;
  }
}

TallyScanResult ScanTallies(std::span<const uint32_t> positive,
                            std::span<const uint32_t> total) {
  // invariant: callers pass parallel columns of one tally table.
  DQM_CHECK_EQ(positive.size(), total.size());
  TallyScanResult result;
  const uint32_t* p = positive.data();
  const uint32_t* t = total.data();
  const size_t n = positive.size();
  // Branch-free flat loop over the two SoA columns: comparisons become
  // vector masks and the sums widening adds, so -O3 autovectorizes it.
  uint64_t nominal = 0, majority = 0, votes = 0, dirty = 0;
  for (size_t i = 0; i < n; ++i) {
    nominal += p[i] != 0;
    majority += 2u * p[i] > t[i];
    votes += t[i];
    dirty += p[i];
  }
  result.nominal_count = nominal;
  result.majority_count = majority;
  result.total_votes = votes;
  result.positive_votes = dirty;
  return result;
}

ResponseLog::ResponseLog(size_t num_items, RetentionPolicy retention)
    : retention_(retention), positive_(num_items, 0), total_(num_items, 0) {}

const std::vector<VoteEvent>& ResponseLog::events() const {
  // invariant: retention is fixed at construction; asking a counts-only
  // log for its event history is a caller programming error.
  DQM_CHECK(retention_ == RetentionPolicy::kFullEvents)
      << "events() requires RetentionPolicy::kFullEvents; this log retains "
         "only compacted counts";
  return events_;
}

bool ResponseLog::AppendCountMatrixBlocks(
    std::vector<const CompactedVoteStore*>& out) const {
  if (retention_ != RetentionPolicy::kCounts) return false;
  if (concurrent_ == nullptr) {
    out.push_back(&compacted_);
    return true;
  }
  // invariant: the consumer set was declared at pipeline construction.
  DQM_CHECK(concurrent_->maintain_pair_counts)
      << "this log was striped without pair-count maintenance; no "
         "response-matrix consumer was declared at pipeline construction";
  for (size_t s = 0; s < concurrent_->num_stripes; ++s) {
    out.push_back(&concurrent_->stripes[s].counts);
  }
  return true;
}

size_t ResponseLog::RetainedBytes() const {
  size_t bytes = events_.capacity() * sizeof(VoteEvent) +
                 compacted_.MemoryBytes() +
                 (positive_.capacity() + total_.capacity()) * sizeof(uint32_t);
  if (concurrent_ != nullptr) {
    // The striped-mode fixed overhead was previously dropped from this sum,
    // under-reporting every striped kCounts session: the control block, the
    // per-stripe metric-pointer table, and the stripe array itself all count.
    bytes += sizeof(ConcurrentState) +
             concurrent_->stripe_metrics.capacity() * sizeof(StripeMetrics) +
             concurrent_->num_stripes * sizeof(Stripe);
    for (size_t s = 0; s < concurrent_->num_stripes; ++s) {
      // The shard's vectors grow under the stripe lock; take it (one stripe
      // at a time, never nested) so a live committer can't resize them
      // mid-measurement. See the header contract: never call this while
      // holding the PauseAndReconcile guard.
      Stripe& stripe = concurrent_->stripes[s];
      MutexLock lock(stripe.mutex);
      bytes += stripe.counts.MemoryBytes();
    }
  }
  return bytes;
}

void ResponseLog::Append(const VoteEvent& event) {
  // invariant: the ingest mode is chosen once, before the first vote.
  DQM_CHECK(concurrent_ == nullptr)
      << "Append is the serialized path; this log ingests through "
         "AppendConcurrent";
  // invariant: item ids were validated against num_items upstream.
  DQM_CHECK_LT(event.item, positive_.size()) << "item id out of range";
  const size_t item = event.item;

  bool was_nominal = positive_[item] > 0;
  bool was_majority = MajorityDirty(item);

  ++total_[item];
  if (event.vote == Vote::kDirty) {
    ++positive_[item];
    ++total_positive_;
  }

  if (!was_nominal && positive_[item] > 0) ++nominal_count_;
  bool is_majority = MajorityDirty(item);
  if (!was_majority && is_majority) {
    ++majority_count_;
  } else if (was_majority && !is_majority) {
    --majority_count_;
  }

  num_tasks_ = std::max(num_tasks_, static_cast<size_t>(event.task) + 1);
  num_workers_ = std::max(num_workers_, static_cast<size_t>(event.worker) + 1);
  ++num_events_;
  if (retention_ == RetentionPolicy::kFullEvents) {
    events_.push_back(event);
  } else {
    compacted_.Add(event.worker, event.item, event.vote);
  }
}

void ResponseLog::EnableConcurrentIngest(size_t num_stripes,
                                         bool maintain_pair_counts) {
  // invariant: striping is a construction-time wiring decision.
  DQM_CHECK(retention_ == RetentionPolicy::kCounts)
      << "concurrent ingest requires kCounts retention (there is no ordered "
         "event history to keep)";
  // invariant: striping cannot be retrofitted onto a live log.
  DQM_CHECK_EQ(num_events_, 0u)
      << "concurrent ingest must be enabled before any vote arrives";
  // invariant: EnableConcurrentIngest is called at most once.
  DQM_CHECK(concurrent_ == nullptr) << "concurrent ingest already enabled";

  auto state = std::make_unique<ConcurrentState>();
  // Stripe = a power-of-two item range of at least one cache line of tally
  // counters. stripe(item) is then a single shift — no division on the
  // commit path — and neighboring stripes write disjoint lines of the
  // shared positive_/total_ columns.
  size_t requested = std::max<size_t>(num_stripes, 1);
  size_t items = positive_.size();
  size_t chunk = kStripeGranuleItems;
  if (items > requested * chunk) {
    chunk = std::bit_ceil((items + requested - 1) / requested);
  }
  state->stripe_shift = static_cast<uint32_t>(std::countr_zero(chunk));
  state->num_stripes = std::max<size_t>((items + chunk - 1) / chunk, 1);
  state->maintain_pair_counts = maintain_pair_counts;
  state->stripes = std::make_unique<Stripe[]>(state->num_stripes);
  // Per-stripe lock counters, resolved once here so the reconcile-time fold
  // never takes the registry mutex per stripe stat. Stripe indices repeat
  // across logs, so these aggregate over every striped log in the process.
  state->stripe_metrics.resize(state->num_stripes);
  auto& registry = telemetry::MetricsRegistry::Global();
  for (size_t s = 0; s < state->num_stripes; ++s) {
    telemetry::LabelSet labels{{"stripe", StrFormat("%zu", s)}};
    StripeMetrics& m = state->stripe_metrics[s];
    m.acquisitions =
        registry.GetCounter(telemetry::metric_names::kStripeLockAcquisitionsTotal, labels);
    m.contended =
        registry.GetCounter(telemetry::metric_names::kStripeLockContendedTotal, labels);
    m.wait_ns = registry.GetCounter(telemetry::metric_names::kStripeLockWaitNsTotal, labels);
    m.hold_ns = registry.GetCounter(telemetry::metric_names::kStripeLockHoldNsTotal, labels);
  }
  concurrent_ = std::move(state);
}

size_t ResponseLog::num_stripes() const {
  return concurrent_ == nullptr ? 0 : concurrent_->num_stripes;
}

void ResponseLog::AppendConcurrent(std::span<const VoteEvent> events) {
  // invariant: the pipeline wires committers only to striped logs.
  DQM_CHECK(concurrent_ != nullptr)
      << "AppendConcurrent requires EnableConcurrentIngest";
  if (events.empty()) return;
  // invariant: batch sizes are bounded by the uint32 scatter index.
  DQM_CHECK_LE(events.size(), UINT32_MAX) << "batch too large to index";
  ConcurrentState& cs = *concurrent_;
  const uint32_t shift = cs.stripe_shift;
  const size_t num_stripes = cs.num_stripes;
  const bool pair_counts = cs.maintain_pair_counts;

  // Bucket the batch by stripe once, unlocked (a counting sort over event
  // indices), so each stripe's lock is held only for that stripe's own
  // events — the contention window a commit imposes on other producers is
  // proportional to its share of the stripe, not the whole batch. The
  // scratch is per producer thread and keeps its capacity, so steady-state
  // commits allocate nothing. The same pass validates every item id up
  // front: an id past the last stripe would otherwise match no bucket and
  // vanish silently instead of aborting like the serialized Append does.
  thread_local std::vector<uint32_t> bucket_ends;    // prefix sums, size S+1
  thread_local std::vector<uint32_t> bucket_cursor;  // scatter cursors
  thread_local std::vector<uint32_t> bucketed;       // event indices by stripe
  bucket_ends.assign(num_stripes + 1, 0);
  for (const VoteEvent& event : events) {
    // invariant: item ids were validated against num_items upstream.
    DQM_CHECK_LT(event.item, positive_.size()) << "item id out of range";
    ++bucket_ends[(event.item >> shift) + 1];
  }
  for (size_t s = 0; s < num_stripes; ++s) bucket_ends[s + 1] += bucket_ends[s];
  bucket_cursor.assign(bucket_ends.begin(), bucket_ends.end() - 1);
  bucketed.resize(events.size());
  for (uint32_t index = 0; index < events.size(); ++index) {
    bucketed[bucket_cursor[events[index].item >> shift]++] = index;
  }

  // Rotate the visit order per commit: concurrent committers start on
  // different stripes instead of convoying behind each other on stripe 0.
  // Committers hold one stripe lock at a time, so any visit order is
  // deadlock-free against other committers and the all-stripe publish lock.
  const size_t start = static_cast<size_t>(
      cs.rotation.fetch_add(1, std::memory_order_relaxed) % num_stripes);
  const bool timed = telemetry::Enabled();
  for (size_t k = 0; k < num_stripes; ++k) {
    size_t s = start + k;
    if (s >= num_stripes) s -= num_stripes;
    if (bucket_ends[s] == bucket_ends[s + 1]) continue;  // untouched stripe
    Stripe& stripe = cs.stripes[s];
    // Contention probe: try_lock first. The uncontended path costs the same
    // one lock operation it always did; only a blocked acquisition pays the
    // two clock reads that time the wait.
    bool contended = false;
    uint64_t wait_start = 0;
    if (!stripe.mutex.TryLock()) {
      contended = true;
      if (timed) wait_start = telemetry::NowNanos();
      stripe.mutex.Lock();
    }
    MutexLock lock(stripe.mutex, kAdoptLock);
    ++stripe.lock_acquisitions;
    if (contended) {
      ++stripe.lock_contended;
      if (timed) stripe.lock_wait_ns += telemetry::NowNanos() - wait_start;
    }
    // Hold-time sampling: 1 in 64 acquisitions, so the steady-state commit
    // pays no clock reads for it.
    const bool sample_hold = timed && (stripe.lock_acquisitions & 63) == 0;
    const uint64_t hold_start = sample_hold ? telemetry::NowNanos() : 0;
    for (uint32_t b = bucket_ends[s]; b < bucket_ends[s + 1]; ++b) {
      const VoteEvent& event = events[bucketed[b]];
      // The cheap commit: flat counter increments only. Derived aggregates
      // (NOMINAL/VOTING, totals, bounds) are re-derived at publish time by
      // ReconcileLocked's vectorized scan.
      ++total_[event.item];
      if (event.vote == Vote::kDirty) {
        ++positive_[event.item];
        ++stripe.total_positive;
      }
      ++stripe.num_events;
      stripe.task_bound =
          std::max(stripe.task_bound, static_cast<uint64_t>(event.task) + 1);
      stripe.worker_bound = std::max(stripe.worker_bound,
                                     static_cast<uint64_t>(event.worker) + 1);
      if (pair_counts) stripe.counts.Add(event.worker, event.item, event.vote);
    }
    if (sample_hold) {
      stripe.lock_hold_ns += telemetry::NowNanos() - hold_start;
      ++stripe.lock_hold_samples;
    }
  }
}

void ResponseLog::LockAllStripes() {
  // Ascending index = ascending address, the order the lock-order checker
  // requires of same-rank (stripe) locks.
  for (size_t s = 0; s < concurrent_->num_stripes; ++s) {
    concurrent_->stripes[s].mutex.Lock();
  }
}

void ResponseLog::UnlockAllStripes() {
  for (size_t s = concurrent_->num_stripes; s > 0; --s) {
    concurrent_->stripes[s - 1].mutex.Unlock();
  }
}

void ResponseLog::IngestPause::Release() {
  if (log_ != nullptr) {
    log_->UnlockAllStripes();
    log_ = nullptr;
  }
}

ResponseLog::IngestPause ResponseLog::PauseAndReconcile() {
  if (concurrent_ == nullptr) return IngestPause();
  // The publish-phase split the ISSUE's forensics need: "pause" is how long
  // acquiring every stripe lock stalled (committers in flight hold them),
  // "fold" is the reconcile scan itself.
  const bool timed = telemetry::Enabled();
  const uint64_t pause_start = timed ? telemetry::NowNanos() : 0;
  LockAllStripes();
  const uint64_t fold_start = timed ? telemetry::NowNanos() : 0;
  ReconcileLocked();
  if (timed) {
    static telemetry::Histogram* pause_hist =
        telemetry::MetricsRegistry::Global().GetHistogram(
            telemetry::metric_names::kPublishPauseNs);
    static telemetry::Histogram* fold_hist =
        telemetry::MetricsRegistry::Global().GetHistogram(
            telemetry::metric_names::kPublishFoldNs);
    const uint64_t fold_end = telemetry::NowNanos();
    const uint64_t pause_ns = fold_start - pause_start;
    pause_hist->Record(pause_ns);
    fold_hist->Record(fold_end - fold_start);
    if (pause_ns > 10'000'000) {
      DQM_LOG_EVERY_N(Warning, 100)
          << "publish paused committers " << pause_ns / 1'000'000
          << "ms acquiring " << concurrent_->num_stripes
          << " stripe locks (rate-limited 1/100)";
    }
  }
  return IngestPause(this);
}

void ResponseLog::ReconcileLocked() {
  uint64_t events = 0;
  uint64_t positive = 0;
  uint64_t task_bound = 0;
  uint64_t worker_bound = 0;
  uint64_t max_stripe_events = 0;
  for (size_t s = 0; s < concurrent_->num_stripes; ++s) {
    Stripe& stripe = concurrent_->stripes[s];
    events += stripe.num_events;
    positive += stripe.total_positive;
    task_bound = std::max(task_bound, stripe.task_bound);
    worker_bound = std::max(worker_bound, stripe.worker_bound);
    max_stripe_events = std::max(max_stripe_events, stripe.num_events);
    // Fold the lock telemetry deltas into the registry while we hold every
    // stripe anyway — the commit hot path never touches an atomic for them.
    const StripeMetrics& m = concurrent_->stripe_metrics[s];
    m.acquisitions->Add(stripe.lock_acquisitions);
    m.contended->Add(stripe.lock_contended);
    m.wait_ns->Add(stripe.lock_wait_ns);
    m.hold_ns->Add(stripe.lock_hold_ns);
    stripe.lock_acquisitions = 0;
    stripe.lock_contended = 0;
    stripe.lock_wait_ns = 0;
    stripe.lock_hold_ns = 0;
    stripe.lock_hold_samples = 0;
  }
  // Stripe imbalance: hottest stripe's share of a perfectly even spread
  // (1.0 = balanced, num_stripes = everything on one stripe). Last striped
  // log to reconcile wins the gauge — a process-wide "how skewed is ingest
  // right now" signal, not a per-log ledger.
  if (events > 0) {
    static telemetry::Gauge* imbalance =
        telemetry::MetricsRegistry::Global().GetGauge(
            telemetry::metric_names::kStripeImbalanceRatio);
    const double mean = static_cast<double>(events) /
                        static_cast<double>(concurrent_->num_stripes);
    imbalance->Set(static_cast<double>(max_stripe_events) / mean);
  }
  TallyScanResult scan = ScanTallies(positive_, total_);
  // invariant: the reconciled columns must agree with the stripe sums;
  // a mismatch means a committer raced the pause guard.
  DQM_CHECK_EQ(scan.total_votes, events);
  DQM_CHECK_EQ(scan.positive_votes, positive);
  num_events_ = events;
  total_positive_ = positive;
  nominal_count_ = static_cast<size_t>(scan.nominal_count);
  majority_count_ = static_cast<size_t>(scan.majority_count);
  num_tasks_ = task_bound;
  num_workers_ = worker_bound;
}

}  // namespace dqm::crowd
