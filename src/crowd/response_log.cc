#include "crowd/response_log.h"

#include "common/logging.h"

namespace dqm::crowd {

ResponseLog::ResponseLog(size_t num_items)
    : positive_(num_items, 0), total_(num_items, 0) {}

void ResponseLog::Append(const VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size()) << "item id out of range";
  const size_t item = event.item;

  bool was_nominal = positive_[item] > 0;
  bool was_majority = MajorityDirty(item);

  ++total_[item];
  if (event.vote == Vote::kDirty) {
    ++positive_[item];
    ++total_positive_;
  }

  if (!was_nominal && positive_[item] > 0) ++nominal_count_;
  bool is_majority = MajorityDirty(item);
  if (!was_majority && is_majority) {
    ++majority_count_;
  } else if (was_majority && !is_majority) {
    --majority_count_;
  }

  num_tasks_ = std::max(num_tasks_, static_cast<size_t>(event.task) + 1);
  num_workers_ = std::max(num_workers_, static_cast<size_t>(event.worker) + 1);
  events_.push_back(event);
}

}  // namespace dqm::crowd
