#include "crowd/response_log.h"

#include <algorithm>

#include "common/logging.h"

namespace dqm::crowd {

namespace {

/// splitmix64 finalizer — cheap, well-mixed hash for the packed pair key.
inline uint64_t MixPair(uint32_t worker, uint32_t item) {
  uint64_t x = (static_cast<uint64_t>(worker) << 32) | item;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

void CompactedVoteStore::Add(uint32_t worker, uint32_t item, Vote vote) {
  size_t slot = FindOrInsertSlot(worker, item);
  if (vote == Vote::kDirty) {
    ++dirty_[slot];
  } else {
    ++clean_[slot];
  }
}

void CompactedVoteStore::Clear() {
  workers_.clear();
  items_.clear();
  dirty_.clear();
  clean_.clear();
  std::fill(index_.begin(), index_.end(), kEmptySlot);
}

size_t CompactedVoteStore::MemoryBytes() const {
  return (workers_.capacity() + items_.capacity() + dirty_.capacity() +
          clean_.capacity() + index_.capacity()) *
         sizeof(uint32_t);
}

size_t CompactedVoteStore::FindOrInsertSlot(uint32_t worker, uint32_t item) {
  // Grow at 3/4 load (and on first use) so probe chains stay short.
  if (index_.empty() || workers_.size() + 1 > index_.size() / 4 * 3) {
    GrowIndex();
  }
  const size_t mask = index_.size() - 1;
  size_t bucket = MixPair(worker, item) & mask;
  for (;;) {
    uint32_t slot = index_[bucket];
    if (slot == kEmptySlot) {
      uint32_t fresh = static_cast<uint32_t>(workers_.size());
      DQM_CHECK_LT(fresh, kEmptySlot) << "compacted store slot id overflow";
      index_[bucket] = fresh;
      workers_.push_back(worker);
      items_.push_back(item);
      dirty_.push_back(0);
      clean_.push_back(0);
      return fresh;
    }
    if (workers_[slot] == worker && items_[slot] == item) return slot;
    bucket = (bucket + 1) & mask;
  }
}

void CompactedVoteStore::GrowIndex() {
  size_t capacity = index_.empty() ? 64 : index_.size() * 2;
  index_.assign(capacity, kEmptySlot);
  const size_t mask = capacity - 1;
  for (uint32_t slot = 0; slot < workers_.size(); ++slot) {
    size_t bucket = MixPair(workers_[slot], items_[slot]) & mask;
    while (index_[bucket] != kEmptySlot) bucket = (bucket + 1) & mask;
    index_[bucket] = slot;
  }
}

ResponseLog::ResponseLog(size_t num_items, RetentionPolicy retention)
    : retention_(retention), positive_(num_items, 0), total_(num_items, 0) {}

const std::vector<VoteEvent>& ResponseLog::events() const {
  DQM_CHECK(retention_ == RetentionPolicy::kFullEvents)
      << "events() requires RetentionPolicy::kFullEvents; this log retains "
         "only compacted counts";
  return events_;
}

void ResponseLog::Append(const VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size()) << "item id out of range";
  const size_t item = event.item;

  bool was_nominal = positive_[item] > 0;
  bool was_majority = MajorityDirty(item);

  ++total_[item];
  if (event.vote == Vote::kDirty) {
    ++positive_[item];
    ++total_positive_;
  }

  if (!was_nominal && positive_[item] > 0) ++nominal_count_;
  bool is_majority = MajorityDirty(item);
  if (!was_majority && is_majority) {
    ++majority_count_;
  } else if (was_majority && !is_majority) {
    --majority_count_;
  }

  num_tasks_ = std::max(num_tasks_, static_cast<size_t>(event.task) + 1);
  num_workers_ = std::max(num_workers_, static_cast<size_t>(event.worker) + 1);
  ++num_events_;
  if (retention_ == RetentionPolicy::kFullEvents) {
    events_.push_back(event);
  } else {
    compacted_.Add(event.worker, event.item, event.vote);
  }
}

}  // namespace dqm::crowd
