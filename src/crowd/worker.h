#ifndef DQM_CROWD_WORKER_H_
#define DQM_CROWD_WORKER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "crowd/vote.h"

namespace dqm::crowd {

/// Error behavior of a single (fallible) worker.
///
/// `false_positive_rate` — probability of marking a *clean* item dirty.
/// `false_negative_rate` — probability of marking a *dirty* item clean
/// (1 - the paper's "error detection rate").
struct WorkerProfile {
  double false_positive_rate = 0.0;
  double false_negative_rate = 0.0;

  /// Applies the error model to the true label of an item.
  Vote Answer(bool truly_dirty, Rng& rng) const {
    if (truly_dirty) {
      return rng.Bernoulli(false_negative_rate) ? Vote::kClean : Vote::kDirty;
    }
    return rng.Bernoulli(false_positive_rate) ? Vote::kDirty : Vote::kClean;
  }
};

/// Population model for crowd workers: workers are drawn i.i.d. from an
/// infinite pool (the paper's main assumption) whose individual error rates
/// scatter around the base profile. A qualification screen (as used in the
/// paper's AMT setup) rejects workers whose rates exceed the configured
/// ceilings; rejected workers are redrawn.
///
/// The pool optionally models a *mixture* population (`Config::cohorts`):
/// each draw first picks a cohort by weight, then perturbs that cohort's
/// base profile. This is how the workload layer injects adversarial
/// sub-crowds — colluding always-wrong voters, spammers — next to the
/// honest majority.
class WorkerPool {
 public:
  /// One sub-population of a mixture pool. Cohort draws bypass the
  /// qualification screen: adversaries are modeled as answering the
  /// screening test honestly and misbehaving afterwards, which is also what
  /// keeps a rate-1.0 cohort from looping the redraw forever.
  struct Cohort {
    /// Relative draw weight (> 0; weights need not sum to 1).
    double weight = 1.0;
    WorkerProfile base;
    /// Std-dev of the per-worker Gaussian perturbation for this cohort
    /// (clamped into [0, 1]). 0 = identical cohort members.
    double variation = 0.0;
  };

  struct Config {
    WorkerProfile base;
    /// Std-dev of the per-worker Gaussian perturbation applied to both
    /// rates (clamped into [0, 0.95]). 0 = identical workers.
    double variation = 0.0;
    /// Qualification-test ceilings; workers above either are rejected.
    double qualification_max_fp = 1.0;
    double qualification_max_fn = 1.0;
    /// When non-empty the pool is a mixture over these cohorts and the
    /// base/variation/qualification fields above are ignored. The rng draw
    /// sequence of the empty-cohorts path is unchanged, so existing seeded
    /// scenarios reproduce bit-identically.
    std::vector<Cohort> cohorts;
  };

  WorkerPool(const Config& config, Rng rng);

  /// Draws the profile of a fresh worker (redrawing until qualified).
  WorkerProfile DrawWorker();

  const Config& config() const { return config_; }

 private:
  WorkerProfile DrawCohortWorker();

  Config config_;
  Rng rng_;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_WORKER_H_
