#ifndef DQM_CROWD_WORKER_H_
#define DQM_CROWD_WORKER_H_

#include <cstdint>

#include "common/random.h"
#include "crowd/vote.h"

namespace dqm::crowd {

/// Error behavior of a single (fallible) worker.
///
/// `false_positive_rate` — probability of marking a *clean* item dirty.
/// `false_negative_rate` — probability of marking a *dirty* item clean
/// (1 - the paper's "error detection rate").
struct WorkerProfile {
  double false_positive_rate = 0.0;
  double false_negative_rate = 0.0;

  /// Applies the error model to the true label of an item.
  Vote Answer(bool truly_dirty, Rng& rng) const {
    if (truly_dirty) {
      return rng.Bernoulli(false_negative_rate) ? Vote::kClean : Vote::kDirty;
    }
    return rng.Bernoulli(false_positive_rate) ? Vote::kDirty : Vote::kClean;
  }
};

/// Population model for crowd workers: workers are drawn i.i.d. from an
/// infinite pool (the paper's main assumption) whose individual error rates
/// scatter around the base profile. A qualification screen (as used in the
/// paper's AMT setup) rejects workers whose rates exceed the configured
/// ceilings; rejected workers are redrawn.
class WorkerPool {
 public:
  struct Config {
    WorkerProfile base;
    /// Std-dev of the per-worker Gaussian perturbation applied to both
    /// rates (clamped into [0, 0.95]). 0 = identical workers.
    double variation = 0.0;
    /// Qualification-test ceilings; workers above either are rejected.
    double qualification_max_fp = 1.0;
    double qualification_max_fn = 1.0;
  };

  WorkerPool(const Config& config, Rng rng);

  /// Draws the profile of a fresh worker (redrawing until qualified).
  WorkerProfile DrawWorker();

  const Config& config() const { return config_; }

 private:
  Config config_;
  Rng rng_;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_WORKER_H_
