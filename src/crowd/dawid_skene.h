#ifndef DQM_CROWD_DAWID_SKENE_H_
#define DQM_CROWD_DAWID_SKENE_H_

#include <cstdint>
#include <vector>

#include "crowd/response_log.h"

namespace dqm::crowd {

/// Dawid–Skene-style EM label aggregation for binary cleaning votes.
///
/// The paper's related work (Section 7, "Label Estimation In
/// Crowdsourcing") points to EM and spectral techniques [21, 36] as the
/// standard way to aggregate noisy votes into labels. This implementation
/// estimates, per worker, a sensitivity (P(vote dirty | item dirty)) and a
/// specificity (P(vote clean | item clean)) together with the dirty-class
/// prior, then produces per-item posterior probabilities.
///
/// EM consumes the *response matrix* (per-(worker, item) vote counts), not
/// the arrival history: every sweep touches each distinct pair exactly once,
/// so a fit over a log with a million votes piled onto a few thousand pairs
/// costs a few thousand pair visits per sweep. Under
/// RetentionPolicy::kCounts the log already maintains that matrix; under
/// kFullEvents it is rebuilt once per fit into reusable Workspace scratch.
///
/// It addresses a *different* problem than the DQM estimators: EM recovers
/// the best labels for items that have votes, while DQM predicts how many
/// errors remain undiscovered. The extension bench shows the two compose:
/// EM sharpens the descriptive count, SWITCH adds the forward-looking tail.
class DawidSkene {
 public:
  struct Options {
    size_t max_iterations = 50;
    /// Sweep cap for warm-started FitIncremental calls: a batch of new
    /// votes moves the posterior fixpoint only slightly, so a small constant
    /// bound keeps per-batch cost O(#pairs), independent of how many
    /// batches came before. Convergence (`tolerance`) usually stops the
    /// sweep loop after 1-3 sweeps anyway.
    size_t max_incremental_sweeps = 8;
    /// Stop when no posterior moves more than this between iterations.
    double tolerance = 1e-6;
    /// Symmetric Beta(s, s) smoothing on worker rates and the prior; keeps
    /// workers with few votes from collapsing to 0/1 rates.
    double smoothing = 1.0;
  };

  struct Result {
    /// P(item is dirty | votes) per item; items without votes carry the
    /// estimated prior.
    std::vector<double> posterior_dirty;
    /// Estimated per-worker sensitivity / specificity.
    std::vector<double> sensitivity;
    std::vector<double> specificity;
    /// Estimated P(dirty).
    double prior_dirty = 0.0;
    /// Sweeps used by the most recent fit call that produced this state.
    size_t iterations = 0;
    bool converged = false;
  };

  /// Reusable per-fit scratch: per-worker accumulators, per-item log-odds,
  /// and the count matrix rebuilt from events under kFullEvents retention.
  /// Keeping one Workspace alive across fits makes the steady-state fit
  /// loop allocation-free.
  struct Workspace {
    std::vector<double> dirty_agree;
    std::vector<double> dirty_total;
    std::vector<double> clean_agree;
    std::vector<double> clean_total;
    std::vector<double> log_dirty;
    std::vector<double> log_clean;
    // Per-worker log-rate tables, refreshed once per E step: the pair sweep
    // then runs on multiply-adds alone (4 log() calls per *worker* per
    // sweep instead of 4 per *pair*).
    std::vector<double> log_sens;
    std::vector<double> log_one_minus_sens;
    std::vector<double> log_spec;
    std::vector<double> log_one_minus_spec;
    // The count-matrix blocks the sweeps iterate: the log's own store (one
    // block; one per stripe on concurrently ingested logs), or
    // scratch_counts rebuilt from events under kFullEvents.
    std::vector<const CompactedVoteStore*> blocks;
    // Per-pair contribution columns: each sweep is split into a gather +
    // multiply-add pass writing these flat SoA columns (a loop shape the
    // autovectorizer can handle) followed by a scalar scatter-accumulate —
    // the indexed-accumulation half no SIMD ISA can do for us.
    std::vector<double> pair_dirty_term;
    std::vector<double> pair_clean_term;
    std::vector<double> pair_posterior;
    CompactedVoteStore scratch_counts;
  };

  explicit DawidSkene(const Options& options);
  DawidSkene() : DawidSkene(Options()) {}

  /// Runs EM from scratch over the votes in `log`. Initialization is
  /// majority voting.
  Result Fit(const ResponseLog& log) const;

  /// Warm-start EM: refines `state` in place against the log's current
  /// counts, running at most Options::max_incremental_sweeps sweeps. When
  /// `state` does not match the log (fresh object, or a different item
  /// universe) the fit cold-starts exactly like Fit(). Newly seen workers
  /// enter at the same neutral rates cold initialization uses. Returns the
  /// number of sweeps performed.
  ///
  /// Warm-started results track the cold-fit fixpoint numerically, not
  /// bit-for-bit — consumers declare the agreement tolerance (see
  /// estimators::ConformanceTraits::estimate_tolerance_abs).
  size_t FitIncremental(const ResponseLog& log, Result& state,
                        Workspace& workspace) const;

  /// Number of items whose posterior exceeds 0.5 — the EM analogue of the
  /// VOTING count.
  static size_t DirtyCount(const Result& result);

 private:
  void ColdStart(const ResponseLog& log, Result& result) const;
  /// Shared EM loop. `refresh_posteriors` (warm starts) re-derives the
  /// posteriors from the current counts and the carried worker rates before
  /// the first M step, so stale posteriors cannot pin the fit to an
  /// outdated basin.
  size_t RunSweeps(const ResponseLog& log, Result& result,
                   Workspace& workspace, size_t max_sweeps,
                   bool refresh_posteriors) const;

  Options options_;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_DAWID_SKENE_H_
