#ifndef DQM_CROWD_DAWID_SKENE_H_
#define DQM_CROWD_DAWID_SKENE_H_

#include <cstdint>
#include <vector>

#include "crowd/response_log.h"

namespace dqm::crowd {

/// Dawid–Skene-style EM label aggregation for binary cleaning votes.
///
/// The paper's related work (Section 7, "Label Estimation In
/// Crowdsourcing") points to EM and spectral techniques [21, 36] as the
/// standard way to aggregate noisy votes into labels. This implementation
/// estimates, per worker, a sensitivity (P(vote dirty | item dirty)) and a
/// specificity (P(vote clean | item clean)) together with the dirty-class
/// prior, then produces per-item posterior probabilities.
///
/// It addresses a *different* problem than the DQM estimators: EM recovers
/// the best labels for items that have votes, while DQM predicts how many
/// errors remain undiscovered. The extension bench shows the two compose:
/// EM sharpens the descriptive count, SWITCH adds the forward-looking tail.
class DawidSkene {
 public:
  struct Options {
    size_t max_iterations = 50;
    /// Stop when no posterior moves more than this between iterations.
    double tolerance = 1e-6;
    /// Symmetric Beta(s, s) smoothing on worker rates and the prior; keeps
    /// workers with few votes from collapsing to 0/1 rates.
    double smoothing = 1.0;
  };

  struct Result {
    /// P(item is dirty | votes) per item; items without votes carry the
    /// estimated prior.
    std::vector<double> posterior_dirty;
    /// Estimated per-worker sensitivity / specificity.
    std::vector<double> sensitivity;
    std::vector<double> specificity;
    /// Estimated P(dirty).
    double prior_dirty = 0.0;
    size_t iterations = 0;
    bool converged = false;
  };

  explicit DawidSkene(const Options& options);
  DawidSkene() : DawidSkene(Options()) {}

  /// Runs EM over the votes in `log`. Initialization is majority voting.
  Result Fit(const ResponseLog& log) const;

  /// Number of items whose posterior exceeds 0.5 — the EM analogue of the
  /// VOTING count.
  static size_t DirtyCount(const Result& result);

 private:
  Options options_;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_DAWID_SKENE_H_
