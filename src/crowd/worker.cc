#include "crowd/worker.h"

#include <algorithm>

#include "common/logging.h"

namespace dqm::crowd {

namespace {

bool IsRate(double value) { return value >= 0.0 && value <= 1.0; }

}  // namespace

WorkerPool::WorkerPool(const Config& config, Rng rng)
    : config_(config), rng_(rng) {
  DQM_CHECK(IsRate(config.base.false_positive_rate));
  DQM_CHECK(IsRate(config.base.false_negative_rate));
  DQM_CHECK_GE(config.variation, 0.0);
  if (!config.cohorts.empty()) {
    for (const Cohort& cohort : config.cohorts) {
      DQM_CHECK_GT(cohort.weight, 0.0);
      DQM_CHECK(IsRate(cohort.base.false_positive_rate));
      DQM_CHECK(IsRate(cohort.base.false_negative_rate));
      DQM_CHECK_GE(cohort.variation, 0.0);
    }
    return;  // mixture pools skip the base-profile qualification check
  }
  // The qualification screen must be satisfiable by the base profile,
  // otherwise DrawWorker could loop for a very long time.
  DQM_CHECK_LE(config.base.false_positive_rate, config.qualification_max_fp);
  DQM_CHECK_LE(config.base.false_negative_rate, config.qualification_max_fn);
}

WorkerProfile WorkerPool::DrawCohortWorker() {
  double total = 0.0;
  for (const Cohort& cohort : config_.cohorts) total += cohort.weight;
  double pick = rng_.UniformDouble() * total;
  const Cohort* chosen = &config_.cohorts.back();
  for (const Cohort& cohort : config_.cohorts) {
    if (pick < cohort.weight) {
      chosen = &cohort;
      break;
    }
    pick -= cohort.weight;
  }
  WorkerProfile profile = chosen->base;
  if (chosen->variation > 0.0) {
    profile.false_positive_rate = std::clamp(
        profile.false_positive_rate + rng_.Gaussian(0.0, chosen->variation),
        0.0, 1.0);
    profile.false_negative_rate = std::clamp(
        profile.false_negative_rate + rng_.Gaussian(0.0, chosen->variation),
        0.0, 1.0);
  }
  return profile;
}

WorkerProfile WorkerPool::DrawWorker() {
  if (!config_.cohorts.empty()) return DrawCohortWorker();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    WorkerProfile profile = config_.base;
    if (config_.variation > 0.0) {
      profile.false_positive_rate = std::clamp(
          profile.false_positive_rate + rng_.Gaussian(0.0, config_.variation),
          0.0, 0.95);
      profile.false_negative_rate = std::clamp(
          profile.false_negative_rate + rng_.Gaussian(0.0, config_.variation),
          0.0, 0.95);
    }
    if (profile.false_positive_rate <= config_.qualification_max_fp &&
        profile.false_negative_rate <= config_.qualification_max_fn) {
      return profile;
    }
  }
  // Qualification is so strict that sampling keeps failing; fall back to the
  // base profile (which the constructor verified to qualify).
  return config_.base;
}

}  // namespace dqm::crowd
