#include "crowd/worker.h"

#include <algorithm>

#include "common/logging.h"

namespace dqm::crowd {

WorkerPool::WorkerPool(const Config& config, Rng rng)
    : config_(config), rng_(rng) {
  DQM_CHECK(config.base.false_positive_rate >= 0.0 &&
            config.base.false_positive_rate <= 1.0);
  DQM_CHECK(config.base.false_negative_rate >= 0.0 &&
            config.base.false_negative_rate <= 1.0);
  DQM_CHECK_GE(config.variation, 0.0);
  // The qualification screen must be satisfiable by the base profile,
  // otherwise DrawWorker could loop for a very long time.
  DQM_CHECK_LE(config.base.false_positive_rate, config.qualification_max_fp);
  DQM_CHECK_LE(config.base.false_negative_rate, config.qualification_max_fn);
}

WorkerProfile WorkerPool::DrawWorker() {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    WorkerProfile profile = config_.base;
    if (config_.variation > 0.0) {
      profile.false_positive_rate = std::clamp(
          profile.false_positive_rate + rng_.Gaussian(0.0, config_.variation),
          0.0, 0.95);
      profile.false_negative_rate = std::clamp(
          profile.false_negative_rate + rng_.Gaussian(0.0, config_.variation),
          0.0, 0.95);
    }
    if (profile.false_positive_rate <= config_.qualification_max_fp &&
        profile.false_negative_rate <= config_.qualification_max_fn) {
      return profile;
    }
  }
  // Qualification is so strict that sampling keeps failing; fall back to the
  // base profile (which the constructor verified to qualify).
  return config_.base;
}

}  // namespace dqm::crowd
