#ifndef DQM_CROWD_RESPONSE_LOG_H_
#define DQM_CROWD_RESPONSE_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/align.h"
#include "common/mutex.h"
#include "crowd/vote.h"
#include "telemetry/metrics.h"

namespace dqm::crowd {

/// Compacted columnar realization of the paper's response matrix `I`:
/// per-(worker, item) dirty/clean vote counts in flat parallel arrays, with
/// an open-addressed (worker, item) -> slot index so appending a vote is
/// O(1) amortized and never allocates except on table growth.
///
/// This is the state the matrix-based consumers (Dawid-Skene EM) actually
/// need: each EM sweep touches every distinct pair once, independent of how
/// many raw votes piled onto it, and steady-state memory is O(#distinct
/// pairs) instead of O(#votes). Slots are appended in first-arrival order,
/// so two stores fed the same vote stream — whether incrementally or by a
/// one-shot replay — are element-for-element identical, which is what keeps
/// count-based fits bit-reproducible across retention policies.
class CompactedVoteStore {
 public:
  CompactedVoteStore() = default;

  /// Folds one vote into its (worker, item) slot, creating it on first
  /// contact.
  void Add(uint32_t worker, uint32_t item, Vote vote);

  /// Forgets all pairs but keeps the allocated capacity — for reuse as fit
  /// scratch without reallocating.
  void Clear();

  /// Number of distinct (worker, item) pairs seen.
  size_t num_pairs() const { return workers_.size(); }

  /// Columnar views, all of length num_pairs(), indexed by slot in
  /// first-arrival order.
  const std::vector<uint32_t>& workers() const { return workers_; }
  const std::vector<uint32_t>& items() const { return items_; }
  const std::vector<uint32_t>& dirty_counts() const { return dirty_; }
  const std::vector<uint32_t>& clean_counts() const { return clean_; }

  /// Bytes of heap owned by the store (capacity, not size) — the number the
  /// retention-policy memory claims are made of.
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  size_t FindOrInsertSlot(uint32_t worker, uint32_t item);
  void GrowIndex();

  // Slot-major parallel arrays (the columnar matrix).
  std::vector<uint32_t> workers_;
  std::vector<uint32_t> items_;
  std::vector<uint32_t> dirty_;
  std::vector<uint32_t> clean_;
  // Open-addressed index over (worker, item): each cell holds a slot id or
  // kEmptySlot. Power-of-two sized, linear probing, grown at 3/4 load.
  std::vector<uint32_t> index_;
};

/// What a ResponseLog retains beyond the per-item tallies.
enum class RetentionPolicy {
  /// Every raw VoteEvent is kept in arrival order. Required by the replay
  /// consumers — PermuteTasks, log serialization, SWITCH diagnostics replays
  /// — and the historical default.
  kFullEvents,
  /// Only the compacted per-(worker, item) counts are kept: steady-state
  /// memory is O(#distinct pairs), not O(#votes). The serving default
  /// (engine sessions). events() is unavailable under this policy.
  kCounts,
};

/// Aggregates derivable from the per-item tally columns in one pass — the
/// publish-side scan the striped ingest path uses instead of maintaining
/// NOMINAL/VOTING transitions on every commit. The loop is branch-free over
/// two flat SoA columns, so the autovectorizer can chew through it.
struct TallyScanResult {
  uint64_t nominal_count = 0;    // #items with at least one dirty vote
  uint64_t majority_count = 0;   // #items with 2 * positive > total
  uint64_t total_votes = 0;      // sum of the total column
  uint64_t positive_votes = 0;   // sum of the positive column
};
TallyScanResult ScanTallies(std::span<const uint32_t> positive,
                            std::span<const uint32_t> total);

/// The ordered collection of worker votes: the concrete realization of the
/// paper's response matrix `I` (plus arrival history under kFullEvents).
///
/// Maintains per-item tallies and the NOMINAL / VOTING counts incrementally,
/// so appending an event is O(1) and estimators can be evaluated after every
/// task without rescanning.
///
/// ## Concurrent ingest (the striped commit path)
///
/// A kCounts log can additionally be switched into *concurrent ingest* mode
/// (EnableConcurrentIngest): the item universe is partitioned into
/// cache-line-aligned stripes, each with its own lock, per-stripe event /
/// positive counters, and (when a consumer needs the response matrix) its
/// own CompactedVoteStore shard. `AppendConcurrent` then commits batches
/// from any number of producer threads at once — a commit touches only the
/// stripes its items map to, and does nothing but bump flat tally counters,
/// so N producers scale until the stripes saturate. The derived aggregates
/// (NOMINAL/VOTING counts, vote totals, task/worker bounds) are *not*
/// maintained per vote in this mode; `PauseAndReconcile` blocks committers,
/// folds the stripe counters, and re-derives the aggregates with the
/// vectorized tally scan. Read accessors reflect the most recent reconcile
/// and may only race-free be called while the returned pause guard is held
/// (or while no committer is running). Tallies and counts reconciled this
/// way are bit-identical to a serialized Append of the same votes in any
/// order; compacted-matrix *slot order* depends on the commit interleaving,
/// which float-summing consumers (EM) must tolerate.
class ResponseLog {
 public:
  /// `num_items` = N, the size of the record (or pair) universe.
  explicit ResponseLog(size_t num_items,
                       RetentionPolicy retention = RetentionPolicy::kFullEvents);

  size_t num_items() const { return positive_.size(); }
  size_t num_events() const { return num_events_; }

  RetentionPolicy retention() const { return retention_; }

  /// Number of distinct tasks / workers seen so far (max id + 1).
  size_t num_tasks() const { return num_tasks_; }
  size_t num_workers() const { return num_workers_; }

  /// Appends one vote. `event.item` must be < num_items(). Serialized-path
  /// only: aborts once concurrent ingest is enabled (use AppendConcurrent).
  void Append(const VoteEvent& event);

  /// All events in arrival order. Only available under kFullEvents — a
  /// kCounts log has, by design, forgotten arrival history (aborts via
  /// DQM_CHECK).
  const std::vector<VoteEvent>& events() const;

  /// The compacted per-(worker, item) count matrix, maintained incrementally
  /// under kCounts; null under kFullEvents (matrix consumers rebuild it once
  /// per fit from events() — see DawidSkene::Workspace) and in concurrent
  /// ingest mode, where the matrix is sharded across stripes (consume it
  /// through AppendCountMatrixBlocks instead).
  const CompactedVoteStore* compacted() const {
    return retention_ == RetentionPolicy::kCounts && concurrent_ == nullptr
               ? &compacted_
               : nullptr;
  }

  /// True when this log maintains a per-(worker, item) count matrix a
  /// checkpoint can serialize: kCounts retention, minus striped logs that
  /// opted out of pair counts (tally-only panels). Selects the snapshot
  /// variant in crowd/wal.h's CheckpointFromLog.
  bool maintains_pair_counts() const {
    return retention_ == RetentionPolicy::kCounts &&
           (concurrent_ == nullptr || concurrent_->maintain_pair_counts);
  }

  /// Appends every live count-matrix block to `out`: the single compacted
  /// store under kCounts, one shard per stripe in concurrent ingest mode.
  /// Returns false under kFullEvents (no matrix is maintained; rebuild from
  /// events()). Aborts if concurrent ingest was enabled without pair-count
  /// maintenance — there is no matrix to consume then, by construction.
  // Reads every stripe's count shard without naming its lock: callers hold
  // the PauseAndReconcile guard (all stripe locks) or run quiescent — a
  // dynamic contract the analysis cannot express.
  bool AppendCountMatrixBlocks(std::vector<const CompactedVoteStore*>& out)
      const DQM_NO_THREAD_SAFETY_ANALYSIS;

  /// n_i^+ — votes marking `item` dirty.
  uint32_t positive_votes(size_t item) const { return positive_[item]; }
  /// n_i — total votes on `item`.
  uint32_t total_votes(size_t item) const { return total_[item]; }
  /// The full per-item tally columns (length num_items()) — the SoA inputs
  /// of the vectorized publish-side scans (ScanTallies,
  /// FStatistics::RebuildFromCounts).
  std::span<const uint32_t> positive_counts() const { return positive_; }
  std::span<const uint32_t> total_counts() const { return total_; }
  /// n^+ — total positive votes across items.
  uint64_t total_positive_votes() const { return total_positive_; }
  /// Total votes across items.
  uint64_t total_votes_all() const { return num_events_; }

  /// Majority label of `item`: dirty iff n_i^+ > n_i / 2 (strictly more
  /// dirty than clean votes; ties and unseen items default to clean, the
  /// paper's default label).
  bool MajorityDirty(size_t item) const {
    return positive_[item] * 2 > total_[item];
  }

  /// Approximate heap bytes retained for vote storage — the raw event
  /// vector under kFullEvents, the compacted matrix (including every
  /// concurrent-ingest stripe shard) under kCounts — plus the per-item
  /// tallies. The number the retention-policy memory comparison
  /// (bench_engine_throughput's long-session sweep) reports. In concurrent
  /// ingest mode each stripe's lock is taken (one at a time) while its
  /// shard is measured, so the read is safe against live committers; do NOT
  /// call it while holding the PauseAndReconcile guard (the stripe locks
  /// are not recursive).
  size_t RetainedBytes() const;

  /// NOMINAL(I): items with at least one dirty vote (Section 2.2.1).
  size_t NominalCount() const { return nominal_count_; }

  /// VOTING(I) = c_majority: items whose majority label is dirty
  /// (Section 2.2.2).
  size_t MajorityCount() const { return majority_count_; }

  // --- Concurrent ingest -------------------------------------------------

  /// Switches an empty kCounts log into concurrent ingest mode with at most
  /// `num_stripes` item-range stripes (clamped so every stripe spans at
  /// least one cache line of tally counters; at least one stripe always
  /// exists). `maintain_pair_counts` selects whether each stripe keeps its
  /// CompactedVoteStore shard — pipelines whose estimators never read the
  /// response matrix (tally-only panels) skip it, making a commit nothing
  /// but flat counter increments.
  void EnableConcurrentIngest(size_t num_stripes, bool maintain_pair_counts);

  bool concurrent_ingest() const { return concurrent_ != nullptr; }

  /// Stripes actually in use (0 when concurrent ingest is not enabled).
  size_t num_stripes() const;

  /// Commits a batch of votes; safe to call from any number of threads
  /// concurrently once EnableConcurrentIngest was called. Items must be
  /// < num_items(). Each stripe the batch touches is locked once; stripes
  /// are visited starting from a rotating offset so concurrent committers
  /// do not convoy behind each other on stripe 0.
  void AppendConcurrent(std::span<const VoteEvent> events);

  /// RAII guard blocking every AppendConcurrent committer while alive.
  class IngestPause {
   public:
    IngestPause() = default;
    IngestPause(IngestPause&& other) noexcept : log_(other.log_) {
      other.log_ = nullptr;
    }
    IngestPause& operator=(IngestPause&& other) noexcept {
      if (this != &other) {
        Release();
        log_ = other.log_;
        other.log_ = nullptr;
      }
      return *this;
    }
    IngestPause(const IngestPause&) = delete;
    IngestPause& operator=(const IngestPause&) = delete;
    ~IngestPause() { Release(); }

   private:
    friend class ResponseLog;
    explicit IngestPause(ResponseLog* log) : log_(log) {}
    void Release();
    ResponseLog* log_ = nullptr;
  };

  /// Locks every stripe (ascending — committers hold at most one stripe at
  /// a time, so this cannot deadlock), folds the per-stripe counters into
  /// the canonical aggregate fields, and re-derives NOMINAL/VOTING with the
  /// vectorized tally scan. While the returned guard is alive committers
  /// block and every read accessor is race-free and current — the publish
  /// window in which the estimator pipeline runs. No-op (empty guard) when
  /// concurrent ingest is not enabled.
  [[nodiscard]] IngestPause PauseAndReconcile();

 private:
  /// Per-stripe mutable ingest state, aligned so two producers committing
  /// into neighboring stripes never bounce a cache line between cores (the
  /// "small fix" half of this: the stripe lock and its counters share the
  /// stripe's line, not their neighbor's).
  struct alignas(kCacheLineBytes) Stripe {
    /// kStripe rank: stripes nest inside the session mutex (publish) and
    /// under each other only in ascending address order (LockAllStripes).
    Mutex mutex{LockRank::kStripe, "response-log-stripe"};
    CompactedVoteStore counts
        DQM_GUARDED_BY(mutex);  // shard; empty when pair counts are off
    uint64_t num_events DQM_GUARDED_BY(mutex) = 0;
    uint64_t total_positive DQM_GUARDED_BY(mutex) = 0;
    /// max task id + 1 committed to this stripe
    uint64_t task_bound DQM_GUARDED_BY(mutex) = 0;
    /// max worker id + 1
    uint64_t worker_bound DQM_GUARDED_BY(mutex) = 0;
    // Lock telemetry, guarded by `mutex` like everything else in the stripe
    // (plain fields — the commit hot path pays no extra atomics for them).
    // Deltas since the last reconcile; ReconcileLocked folds them into the
    // per-stripe registry counters and zeroes them.
    uint64_t lock_acquisitions DQM_GUARDED_BY(mutex) = 0;
    /// acquisitions that had to block
    uint64_t lock_contended DQM_GUARDED_BY(mutex) = 0;
    /// blocked time (contended path only)
    uint64_t lock_wait_ns DQM_GUARDED_BY(mutex) = 0;
    /// held time, sampled 1 in 64
    uint64_t lock_hold_ns DQM_GUARDED_BY(mutex) = 0;
    uint64_t lock_hold_samples DQM_GUARDED_BY(mutex) = 0;
  };
  /// Per-stripe registry counters (created once at EnableConcurrentIngest,
  /// labeled stripe="<index>") the plain Stripe stats fold into.
  struct StripeMetrics {
    telemetry::Counter* acquisitions = nullptr;
    telemetry::Counter* contended = nullptr;
    telemetry::Counter* wait_ns = nullptr;
    telemetry::Counter* hold_ns = nullptr;
  };
  struct ConcurrentState {
    size_t num_stripes = 0;
    uint32_t stripe_shift = 0;  // stripe(item) = item >> stripe_shift
    bool maintain_pair_counts = true;
    std::atomic<uint64_t> rotation{0};
    std::unique_ptr<Stripe[]> stripes;
    std::vector<StripeMetrics> stripe_metrics;
  };

  // The next three work on the dynamically sized set of stripe locks (one
  // per stripe, acquired in a loop), which the thread-safety analysis cannot
  // model — the debug lock-order checker covers them at run time instead
  // (same-rank locks must be taken in ascending address order).
  void LockAllStripes() DQM_NO_THREAD_SAFETY_ANALYSIS;
  void UnlockAllStripes() DQM_NO_THREAD_SAFETY_ANALYSIS;
  /// Folds stripe counters into the canonical fields; caller holds every
  /// stripe lock (via LockAllStripes).
  void ReconcileLocked() DQM_NO_THREAD_SAFETY_ANALYSIS;

  /// Per-item tally column whose base address starts on a cache line: the
  /// stripe partition (multiples of kCacheLineBytes / sizeof(uint32_t)
  /// items) then maps stripes to fully disjoint lines, so concurrent
  /// committers on neighboring stripes never false-share.
  using TallyColumn = std::vector<uint32_t, CacheAlignedAllocator<uint32_t>>;

  RetentionPolicy retention_;
  std::vector<VoteEvent> events_;    // kFullEvents only
  CompactedVoteStore compacted_;     // kCounts, serialized mode only
  TallyColumn positive_;
  TallyColumn total_;
  uint64_t num_events_ = 0;
  uint64_t total_positive_ = 0;
  size_t nominal_count_ = 0;
  size_t majority_count_ = 0;
  size_t num_tasks_ = 0;
  size_t num_workers_ = 0;
  /// Heap-held so the log stays movable (a mutex is not).
  std::unique_ptr<ConcurrentState> concurrent_;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_RESPONSE_LOG_H_
