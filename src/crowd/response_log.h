#ifndef DQM_CROWD_RESPONSE_LOG_H_
#define DQM_CROWD_RESPONSE_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crowd/vote.h"

namespace dqm::crowd {

/// Compacted columnar realization of the paper's response matrix `I`:
/// per-(worker, item) dirty/clean vote counts in flat parallel arrays, with
/// an open-addressed (worker, item) -> slot index so appending a vote is
/// O(1) amortized and never allocates except on table growth.
///
/// This is the state the matrix-based consumers (Dawid-Skene EM) actually
/// need: each EM sweep touches every distinct pair once, independent of how
/// many raw votes piled onto it, and steady-state memory is O(#distinct
/// pairs) instead of O(#votes). Slots are appended in first-arrival order,
/// so two stores fed the same vote stream — whether incrementally or by a
/// one-shot replay — are element-for-element identical, which is what keeps
/// count-based fits bit-reproducible across retention policies.
class CompactedVoteStore {
 public:
  CompactedVoteStore() = default;

  /// Folds one vote into its (worker, item) slot, creating it on first
  /// contact.
  void Add(uint32_t worker, uint32_t item, Vote vote);

  /// Forgets all pairs but keeps the allocated capacity — for reuse as fit
  /// scratch without reallocating.
  void Clear();

  /// Number of distinct (worker, item) pairs seen.
  size_t num_pairs() const { return workers_.size(); }

  /// Columnar views, all of length num_pairs(), indexed by slot in
  /// first-arrival order.
  const std::vector<uint32_t>& workers() const { return workers_; }
  const std::vector<uint32_t>& items() const { return items_; }
  const std::vector<uint32_t>& dirty_counts() const { return dirty_; }
  const std::vector<uint32_t>& clean_counts() const { return clean_; }

  /// Bytes of heap owned by the store (capacity, not size) — the number the
  /// retention-policy memory claims are made of.
  size_t MemoryBytes() const;

 private:
  static constexpr uint32_t kEmptySlot = UINT32_MAX;

  size_t FindOrInsertSlot(uint32_t worker, uint32_t item);
  void GrowIndex();

  // Slot-major parallel arrays (the columnar matrix).
  std::vector<uint32_t> workers_;
  std::vector<uint32_t> items_;
  std::vector<uint32_t> dirty_;
  std::vector<uint32_t> clean_;
  // Open-addressed index over (worker, item): each cell holds a slot id or
  // kEmptySlot. Power-of-two sized, linear probing, grown at 3/4 load.
  std::vector<uint32_t> index_;
};

/// What a ResponseLog retains beyond the per-item tallies.
enum class RetentionPolicy {
  /// Every raw VoteEvent is kept in arrival order. Required by the replay
  /// consumers — PermuteTasks, log serialization, SWITCH diagnostics replays
  /// — and the historical default.
  kFullEvents,
  /// Only the compacted per-(worker, item) counts are kept: steady-state
  /// memory is O(#distinct pairs), not O(#votes). The serving default
  /// (engine sessions). events() is unavailable under this policy.
  kCounts,
};

/// The ordered collection of worker votes: the concrete realization of the
/// paper's response matrix `I` (plus arrival history under kFullEvents).
///
/// Maintains per-item tallies and the NOMINAL / VOTING counts incrementally,
/// so appending an event is O(1) and estimators can be evaluated after every
/// task without rescanning.
class ResponseLog {
 public:
  /// `num_items` = N, the size of the record (or pair) universe.
  explicit ResponseLog(size_t num_items,
                       RetentionPolicy retention = RetentionPolicy::kFullEvents);

  size_t num_items() const { return positive_.size(); }
  size_t num_events() const { return num_events_; }

  RetentionPolicy retention() const { return retention_; }

  /// Number of distinct tasks / workers seen so far (max id + 1).
  size_t num_tasks() const { return num_tasks_; }
  size_t num_workers() const { return num_workers_; }

  /// Appends one vote. `event.item` must be < num_items().
  void Append(const VoteEvent& event);

  /// All events in arrival order. Only available under kFullEvents — a
  /// kCounts log has, by design, forgotten arrival history (aborts via
  /// DQM_CHECK).
  const std::vector<VoteEvent>& events() const;

  /// The compacted per-(worker, item) count matrix, maintained incrementally
  /// under kCounts; null under kFullEvents (matrix consumers rebuild it once
  /// per fit from events() — see DawidSkene::Workspace).
  const CompactedVoteStore* compacted() const {
    return retention_ == RetentionPolicy::kCounts ? &compacted_ : nullptr;
  }

  /// n_i^+ — votes marking `item` dirty.
  uint32_t positive_votes(size_t item) const { return positive_[item]; }
  /// n_i — total votes on `item`.
  uint32_t total_votes(size_t item) const { return total_[item]; }
  /// n^+ — total positive votes across items.
  uint64_t total_positive_votes() const { return total_positive_; }
  /// Total votes across items.
  uint64_t total_votes_all() const { return num_events_; }

  /// Majority label of `item`: dirty iff n_i^+ > n_i / 2 (strictly more
  /// dirty than clean votes; ties and unseen items default to clean, the
  /// paper's default label).
  bool MajorityDirty(size_t item) const {
    return positive_[item] * 2 > total_[item];
  }

  /// Approximate heap bytes retained for vote storage — the raw event
  /// vector under kFullEvents, the compacted matrix under kCounts — plus
  /// the per-item tallies. The number the retention-policy memory
  /// comparison (bench_engine_throughput's long-session sweep) reports.
  size_t RetainedBytes() const {
    return events_.capacity() * sizeof(VoteEvent) + compacted_.MemoryBytes() +
           (positive_.capacity() + total_.capacity()) * sizeof(uint32_t);
  }

  /// NOMINAL(I): items with at least one dirty vote (Section 2.2.1).
  size_t NominalCount() const { return nominal_count_; }

  /// VOTING(I) = c_majority: items whose majority label is dirty
  /// (Section 2.2.2).
  size_t MajorityCount() const { return majority_count_; }

 private:
  RetentionPolicy retention_;
  std::vector<VoteEvent> events_;    // kFullEvents only
  CompactedVoteStore compacted_;     // kCounts only
  std::vector<uint32_t> positive_;
  std::vector<uint32_t> total_;
  uint64_t num_events_ = 0;
  uint64_t total_positive_ = 0;
  size_t nominal_count_ = 0;
  size_t majority_count_ = 0;
  size_t num_tasks_ = 0;
  size_t num_workers_ = 0;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_RESPONSE_LOG_H_
