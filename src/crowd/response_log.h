#ifndef DQM_CROWD_RESPONSE_LOG_H_
#define DQM_CROWD_RESPONSE_LOG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "crowd/vote.h"

namespace dqm::crowd {

/// The ordered collection of worker votes: the concrete realization of the
/// paper's response matrix `I` plus arrival order.
///
/// Maintains per-item tallies and the NOMINAL / VOTING counts incrementally,
/// so appending an event is O(1) and estimators can be evaluated after every
/// task without rescanning.
class ResponseLog {
 public:
  /// `num_items` = N, the size of the record (or pair) universe.
  explicit ResponseLog(size_t num_items);

  size_t num_items() const { return positive_.size(); }
  size_t num_events() const { return events_.size(); }

  /// Number of distinct tasks / workers seen so far (max id + 1).
  size_t num_tasks() const { return num_tasks_; }
  size_t num_workers() const { return num_workers_; }

  /// Appends one vote. `event.item` must be < num_items().
  void Append(const VoteEvent& event);

  /// All events in arrival order.
  const std::vector<VoteEvent>& events() const { return events_; }

  /// n_i^+ — votes marking `item` dirty.
  uint32_t positive_votes(size_t item) const { return positive_[item]; }
  /// n_i — total votes on `item`.
  uint32_t total_votes(size_t item) const { return total_[item]; }
  /// n^+ — total positive votes across items.
  uint64_t total_positive_votes() const { return total_positive_; }
  /// Total votes across items.
  uint64_t total_votes_all() const { return events_.size(); }

  /// Majority label of `item`: dirty iff n_i^+ > n_i / 2 (strictly more
  /// dirty than clean votes; ties and unseen items default to clean, the
  /// paper's default label).
  bool MajorityDirty(size_t item) const {
    return positive_[item] * 2 > total_[item];
  }

  /// NOMINAL(I): items with at least one dirty vote (Section 2.2.1).
  size_t NominalCount() const { return nominal_count_; }

  /// VOTING(I) = c_majority: items whose majority label is dirty
  /// (Section 2.2.2).
  size_t MajorityCount() const { return majority_count_; }

 private:
  std::vector<VoteEvent> events_;
  std::vector<uint32_t> positive_;
  std::vector<uint32_t> total_;
  uint64_t total_positive_ = 0;
  size_t nominal_count_ = 0;
  size_t majority_count_ = 0;
  size_t num_tasks_ = 0;
  size_t num_workers_ = 0;
};

}  // namespace dqm::crowd

#endif  // DQM_CROWD_RESPONSE_LOG_H_
