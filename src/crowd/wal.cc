#include "crowd/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "crowd/io.h"

namespace dqm::crowd {

namespace {

// --- File-format constants -------------------------------------------------

constexpr uint32_t kWalMagic = 0x4C415744;         // "DWAL" on disk
constexpr uint32_t kWalVersion = 1;
// kWalHeaderBytes (magic + version + gen) lives in wal.h — replication
// ships body slices relative to it.
constexpr size_t kRecordFrameBytes = 8;            // payload_size + crc
constexpr size_t kVoteBytes = 13;                  // 3 x u32 + vote byte

constexpr uint32_t kCheckpointMagic = 0x50435144;  // "DQCP" on disk
constexpr uint32_t kCheckpointVersion = 1;

constexpr uint32_t kSegmentMagic = 0x47455344;     // "DSEG" on disk
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 52;         // through payload_size

constexpr size_t kEmitBatchVotes = 4096;

// --- Little-endian (de)serialization helpers -------------------------------

void PutU32(std::vector<uint8_t>& out, uint32_t value) {
  out.push_back(static_cast<uint8_t>(value));
  out.push_back(static_cast<uint8_t>(value >> 8));
  out.push_back(static_cast<uint8_t>(value >> 16));
  out.push_back(static_cast<uint8_t>(value >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(value));
  PutU32(out, static_cast<uint32_t>(value >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status ErrnoError(const char* op, const std::string& path) {
  return Status::IOError(StrFormat("%s '%s': %s", op, path.c_str(),
                                   std::strerror(errno)));
}

// All write/fsync/rename/read edges below go through the failpoint-
// instrumented, retrying wrappers in crowd/io.h (the raw-syscall lint rule
// holds this file to that); only the metadata-only calls (fstat, lseek,
// close) stay raw.
namespace io = ::dqm::crowd::io;
namespace fpn = ::dqm::crowd::io::fpn;

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& table = Crc32Table();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFF];
  }
  return ~crc;
}

Status ValidateVoteBounds(uint32_t task, uint32_t worker, uint32_t item,
                          size_t num_items) {
  if (item >= num_items) {
    return Status::OutOfRange(StrFormat("item id %u >= num_items %zu", item,
                                        num_items));
  }
  if (worker > kMaxWorkerId) {
    return Status::OutOfRange(
        StrFormat("worker id %u exceeds the cap %u", worker, kMaxWorkerId));
  }
  if (task > kMaxTaskId) {
    return Status::OutOfRange(
        StrFormat("task id %u exceeds the cap %u", task, kMaxTaskId));
  }
  return Status::OK();
}

// --- VoteWal ---------------------------------------------------------------

VoteWal::~VoteWal() {
  if (fd_ >= 0) ::close(fd_);
}

VoteWal::VoteWal(VoteWal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      generation_(other.generation_),
      bytes_written_(other.bytes_written_),
      durable_size_(other.durable_size_),
      written_size_(other.written_size_),
      sealed_(other.sealed_),
      seal_reason_(std::move(other.seal_reason_)),
      fail_next_write_(other.fail_next_write_),
      fail_next_sync_(other.fail_next_sync_),
      buffer_(std::move(other.buffer_)),
      replay_scratch_(std::move(other.replay_scratch_)) {}

VoteWal& VoteWal::operator=(VoteWal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    generation_ = other.generation_;
    bytes_written_ = other.bytes_written_;
    durable_size_ = other.durable_size_;
    written_size_ = other.written_size_;
    sealed_ = other.sealed_;
    seal_reason_ = std::move(other.seal_reason_);
    fail_next_write_ = other.fail_next_write_;
    fail_next_sync_ = other.fail_next_sync_;
    buffer_ = std::move(other.buffer_);
    replay_scratch_ = std::move(other.replay_scratch_);
  }
  return *this;
}

Status VoteWal::WriteHeader(uint64_t generation) {
  std::vector<uint8_t> header;
  header.reserve(kWalHeaderBytes);
  PutU32(header, kWalMagic);
  PutU32(header, kWalVersion);
  PutU64(header, generation);
  DQM_RETURN_NOT_OK(
      io::WriteAll(fpn::kWalWrite, fd_, header.data(), header.size(), path_));
  DQM_RETURN_NOT_OK(io::Fsync(fpn::kWalFsync, fd_, path_));
  bytes_written_ += header.size();
  written_size_ = kWalHeaderBytes;
  durable_size_ = kWalHeaderBytes;
  generation_ = generation;
  return Status::OK();
}

Result<VoteWal> VoteWal::Open(const std::string& path) {
  VoteWal wal;
  wal.path_ = path;
  DQM_ASSIGN_OR_RETURN(
      wal.fd_, io::Open(fpn::kWalOpen, path, O_RDWR | O_CREAT | O_CLOEXEC,
                        0644));
  struct stat st;
  if (::fstat(wal.fd_, &st) != 0) return ErrnoError("stat", path);
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kWalHeaderBytes) {
    // Fresh file, or a crash landed mid-way through the very first header
    // write (the header is synced before any record can follow it, so a
    // short file cannot hold committed votes). Start at generation 1.
    if (size != 0) {
      DQM_RETURN_NOT_OK(io::Ftruncate(fpn::kWalTruncate, wal.fd_, 0, path));
    }
    if (::lseek(wal.fd_, 0, SEEK_SET) < 0) return ErrnoError("seek", path);
    DQM_RETURN_NOT_OK(wal.WriteHeader(1));
  } else {
    uint8_t header[kWalHeaderBytes];
    DQM_RETURN_NOT_OK(io::ReadExactAt(fpn::kWalRead, wal.fd_, header,
                                      kWalHeaderBytes, 0, path));
    if (GetU32(header) != kWalMagic) {
      return Status::InvalidArgument(
          StrFormat("'%s' is not a DQM vote WAL (bad magic)", path.c_str()));
    }
    uint32_t version = GetU32(header + 4);
    if (version != kWalVersion) {
      return Status::InvalidArgument(StrFormat(
          "'%s': unsupported WAL version %u", path.c_str(), version));
    }
    wal.generation_ = GetU64(header + 8);
    if (::lseek(wal.fd_, 0, SEEK_END) < 0) return ErrnoError("seek", path);
    // Whatever an earlier process left on disk is the durable baseline; a
    // torn tail inside it is found and cut by ReplayAndTruncate.
    wal.written_size_ = size;
    wal.durable_size_ = size;
  }
  return wal;
}

void VoteWal::Append(std::span<const VoteEvent> events) {
  if (sealed_ || events.empty()) return;
  const uint32_t count = static_cast<uint32_t>(events.size());
  const size_t payload_size = 4 + kVoteBytes * events.size();
  const size_t record_start = buffer_.size();
  buffer_.reserve(record_start + kRecordFrameBytes + payload_size);
  PutU32(buffer_, static_cast<uint32_t>(payload_size));
  PutU32(buffer_, 0);  // crc placeholder, patched below
  PutU32(buffer_, count);
  for (const VoteEvent& event : events) {
    PutU32(buffer_, event.task);
    PutU32(buffer_, event.worker);
    PutU32(buffer_, event.item);
    buffer_.push_back(static_cast<uint8_t>(event.vote));
  }
  const uint8_t* payload = buffer_.data() + record_start + kRecordFrameBytes;
  uint32_t crc = Crc32(payload, payload_size);
  uint8_t* crc_at = buffer_.data() + record_start + 4;
  crc_at[0] = static_cast<uint8_t>(crc);
  crc_at[1] = static_cast<uint8_t>(crc >> 8);
  crc_at[2] = static_cast<uint8_t>(crc >> 16);
  crc_at[3] = static_cast<uint8_t>(crc >> 24);
}

void VoteWal::Seal(const Status& cause) {
  sealed_ = true;
  seal_reason_ = cause.message();
  buffer_.clear();
  // Cut the file back to the last fsync-acknowledged boundary: everything
  // past it belongs to batches the owner is rejecting (or to a torn write)
  // and must not resurrect at recovery as CRC-valid records. Best effort —
  // if the truncate or its fsync also fails, the seal still guarantees no
  // later append lands past the damage, so recovery's scan can at worst
  // see the rejected tail, never lose an acknowledged record behind it.
  if (io::Ftruncate(fpn::kWalTruncate, fd_, durable_size_, path_).ok() &&
      ::lseek(fd_, static_cast<off_t>(durable_size_), SEEK_SET) >= 0) {
    written_size_ = durable_size_;
    Status synced = io::Fsync(fpn::kWalFsync, fd_, path_);
    (void)synced;  // best effort — see above
  }
}

Status VoteWal::SealedStatus() const {
  return Status::IOError(StrFormat(
      "WAL '%s' is sealed after an I/O failure (%s); appends are rejected "
      "until a checkpoint resets it", path_.c_str(), seal_reason_.c_str()));
}

Status VoteWal::WriteBuffered() {
  if (sealed_) return SealedStatus();
  if (buffer_.empty()) return Status::OK();
  Status status;
  if (fail_next_write_) {
    fail_next_write_ = false;
    status = Status::IOError(
        StrFormat("write '%s': injected test fault", path_.c_str()));
  } else {
    status =
        io::WriteAll(fpn::kWalWrite, fd_, buffer_.data(), buffer_.size(),
                     path_);
  }
  if (!status.ok()) {
    // A failed or short write leaves the fd offset and an unknown number of
    // torn bytes past the durable boundary; seal so no future append can be
    // acknowledged behind them (recovery truncates at the first bad record).
    Seal(status);
    return status;
  }
  bytes_written_ += buffer_.size();
  written_size_ += buffer_.size();
  buffer_.clear();
  return status;
}

Status VoteWal::Sync() {
  if (sealed_) return SealedStatus();
  DQM_RETURN_NOT_OK(WriteBuffered());
  Status status;
  if (fail_next_sync_) {
    fail_next_sync_ = false;
    status = Status::IOError(
        StrFormat("fsync '%s': injected test fault", path_.c_str()));
  } else {
    status = io::Fsync(fpn::kWalFsync, fd_, path_);
  }
  if (!status.ok()) {
    // The records reached write(2) but their durability was never
    // acknowledged, so the owner rejects the batch — truncate them away
    // (they are complete, CRC-valid frames that replay would apply).
    Seal(status);
    return status;
  }
  durable_size_ = written_size_;
  return status;
}

Result<WalScanResult> ScanWalRecords(
    std::span<const uint8_t> body, size_t num_items,
    const std::function<Status(std::span<const VoteEvent>)>& apply,
    std::vector<VoteEvent>& scratch) {
  WalScanResult result;
  const size_t body_size = body.size();
  size_t offset = 0;
  while (body_size - offset >= kRecordFrameBytes) {
    const uint32_t payload_size = GetU32(body.data() + offset);
    if (payload_size < 4 || (payload_size - 4) % kVoteBytes != 0 ||
        payload_size > body_size - offset - kRecordFrameBytes) {
      result.torn = true;  // framing damage, or record runs past end of body
      return result;
    }
    const uint32_t stored_crc = GetU32(body.data() + offset + 4);
    const uint8_t* payload = body.data() + offset + kRecordFrameBytes;
    if (Crc32(payload, payload_size) != stored_crc) {
      result.torn = true;
      return result;
    }
    const uint32_t count = GetU32(payload);
    if (4 + kVoteBytes * static_cast<size_t>(count) != payload_size) {
      result.torn = true;
      return result;
    }
    scratch.clear();
    scratch.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      const uint8_t* vote = payload + 4 + kVoteBytes * static_cast<size_t>(i);
      VoteEvent event;
      event.task = GetU32(vote);
      event.worker = GetU32(vote + 4);
      event.item = GetU32(vote + 8);
      const uint8_t vote_byte = vote[12];
      // The same validation path the CSV reader uses: a record whose ids or
      // vote byte fail the bounds check is treated as corruption, never fed
      // to the pipeline.
      if (vote_byte > 1 ||
          !ValidateVoteBounds(event.task, event.worker, event.item, num_items)
               .ok()) {
        result.torn = true;
        return result;
      }
      event.vote = vote_byte == 1 ? Vote::kDirty : Vote::kClean;
      scratch.push_back(event);
    }
    DQM_RETURN_NOT_OK(apply(std::span<const VoteEvent>(scratch)));
    result.votes += count;
    ++result.records;
    offset += kRecordFrameBytes + payload_size;
    result.clean_end = offset;
  }
  // A partial trailing frame header (under kRecordFrameBytes) is a torn
  // write too.
  result.torn = result.torn || offset < body_size;
  return result;
}

Result<VoteWal::ReplayStats> VoteWal::ReplayAndTruncate(
    size_t num_items,
    const std::function<Status(std::span<const VoteEvent>)>& apply) {
  ReplayStats stats;
  struct stat st;
  if (::fstat(fd_, &st) != 0) return ErrnoError("stat", path_);
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  if (file_size <= kWalHeaderBytes) return stats;
  const size_t body_size = static_cast<size_t>(file_size - kWalHeaderBytes);
  std::vector<uint8_t> body(body_size);
  DQM_RETURN_NOT_OK(io::ReadExactAt(fpn::kWalRead, fd_, body.data(),
                                    body_size, kWalHeaderBytes, path_));

  DQM_ASSIGN_OR_RETURN(
      WalScanResult scan,
      ScanWalRecords(std::span<const uint8_t>(body), num_items, apply,
                     replay_scratch_));
  stats.votes = scan.votes;
  stats.records = scan.records;
  if (scan.torn) {
    // Torn tail: physically cut the file back to the last intact record so
    // the WAL is clean for future appends and re-recoveries.
    stats.torn_records = 1;
    const uint64_t keep = kWalHeaderBytes + scan.clean_end;
    DQM_LOG(Warning) << "WAL '" << path_ << "': truncating "
                     << (file_size - keep)
                     << " trailing bytes (torn or corrupt record)";
    DQM_RETURN_NOT_OK(io::Ftruncate(fpn::kWalTruncate, fd_, keep, path_));
    DQM_RETURN_NOT_OK(io::Fsync(fpn::kWalFsync, fd_, path_));
    written_size_ = keep;
    durable_size_ = keep;
  } else {
    written_size_ = file_size;
    durable_size_ = file_size;
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) return ErrnoError("seek", path_);
  return stats;
}

Status VoteWal::Reset(uint64_t new_generation) {
  buffer_.clear();
  if (Status status = io::Ftruncate(fpn::kWalTruncate, fd_, 0, path_);
      !status.ok()) {
    Seal(status);
    return status;
  }
  written_size_ = 0;
  durable_size_ = 0;
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    Status status = ErrnoError("seek", path_);
    Seal(status);
    return status;
  }
  Status status = WriteHeader(new_generation);
  if (!status.ok()) {
    Seal(status);
    return status;
  }
  // A clean, empty, synced file: safe to unseal — every vote the dropped
  // tail ever held is inside the checkpoint that triggered this Reset.
  sealed_ = false;
  seal_reason_.clear();
  return Status::OK();
}

// --- WAL segments ----------------------------------------------------------

void EncodeWalSegment(const WalSegment& segment, std::vector<uint8_t>& out) {
  out.clear();
  out.reserve(kSegmentHeaderBytes + segment.payload.size() + 4);
  PutU32(out, kSegmentMagic);
  PutU32(out, kSegmentVersion);
  PutU64(out, segment.generation);
  PutU64(out, segment.seq);
  PutU64(out, segment.start_offset);
  PutU64(out, segment.cum_votes);
  PutU64(out, segment.fencing_token);
  PutU32(out, static_cast<uint32_t>(segment.payload.size()));
  out.insert(out.end(), segment.payload.begin(), segment.payload.end());
  PutU32(out, Crc32(out.data(), out.size()));
}

Result<WalSegment> DecodeWalSegment(std::span<const uint8_t> bytes,
                                    const std::string& context) {
  auto corrupt = [&context](const char* why) {
    return Status::IOError(
        StrFormat("corrupt WAL segment '%s': %s", context.c_str(), why));
  };
  if (bytes.size() < kSegmentHeaderBytes + 4) return corrupt("too short");
  if (Crc32(bytes.data(), bytes.size() - 4) !=
      GetU32(bytes.data() + bytes.size() - 4)) {
    return corrupt("checksum mismatch");
  }
  if (GetU32(bytes.data()) != kSegmentMagic) return corrupt("bad magic");
  if (GetU32(bytes.data() + 4) != kSegmentVersion) {
    return corrupt("unsupported version");
  }
  WalSegment segment;
  segment.generation = GetU64(bytes.data() + 8);
  segment.seq = GetU64(bytes.data() + 16);
  segment.start_offset = GetU64(bytes.data() + 24);
  segment.cum_votes = GetU64(bytes.data() + 32);
  segment.fencing_token = GetU64(bytes.data() + 40);
  const uint32_t payload_size = GetU32(bytes.data() + 48);
  if (payload_size != bytes.size() - kSegmentHeaderBytes - 4) {
    return corrupt("payload size mismatch");
  }
  if (segment.seq == 0) return corrupt("zero sequence number");
  segment.payload.assign(bytes.begin() + kSegmentHeaderBytes,
                         bytes.end() - 4);
  return segment;
}

// --- Checkpoints -----------------------------------------------------------

Result<CheckpointData> CheckpointFromLog(const ResponseLog& log,
                                         uint64_t wal_generation) {
  if (log.retention() != RetentionPolicy::kCounts) {
    return Status::FailedPrecondition(
        "checkpoints serialize kCounts compacted state; this log retains "
        "full events");
  }
  CheckpointData data;
  data.wal_generation = wal_generation;
  data.num_items = log.num_items();
  data.num_events = log.num_events();
  data.num_tasks = log.num_tasks();
  data.num_workers = log.num_workers();
  if (log.maintains_pair_counts()) {
    data.variant = CheckpointData::Variant::kPairs;
    std::vector<const CompactedVoteStore*> blocks;
    log.AppendCountMatrixBlocks(blocks);
    size_t pairs = 0;
    for (const CompactedVoteStore* block : blocks) pairs += block->num_pairs();
    data.workers.reserve(pairs);
    data.items.reserve(pairs);
    data.dirty.reserve(pairs);
    data.clean.reserve(pairs);
    // Shards are concatenated in stripe order; within a shard slots keep
    // their first-arrival order. Restoring replays the same concatenation,
    // which routes each pair back to its stripe and rebuilds every shard
    // slot-for-slot.
    for (const CompactedVoteStore* block : blocks) {
      data.workers.insert(data.workers.end(), block->workers().begin(),
                          block->workers().end());
      data.items.insert(data.items.end(), block->items().begin(),
                        block->items().end());
      data.dirty.insert(data.dirty.end(), block->dirty_counts().begin(),
                        block->dirty_counts().end());
      data.clean.insert(data.clean.end(), block->clean_counts().begin(),
                        block->clean_counts().end());
    }
  } else {
    data.variant = CheckpointData::Variant::kTallies;
    std::span<const uint32_t> positive = log.positive_counts();
    std::span<const uint32_t> total = log.total_counts();
    data.positive.assign(positive.begin(), positive.end());
    data.total.assign(total.begin(), total.end());
  }
  return data;
}

namespace {

void PutColumn(std::vector<uint8_t>& out, const std::vector<uint32_t>& col) {
  for (uint32_t v : col) PutU32(out, v);
}

void GetColumn(const uint8_t* data, size_t n, std::vector<uint32_t>& col) {
  col.resize(n);
  for (size_t i = 0; i < n; ++i) col[i] = GetU32(data + 4 * i);
}

}  // namespace

Status WriteCheckpointFile(const std::string& path,
                           const CheckpointData& data) {
  const bool pairs = data.variant == CheckpointData::Variant::kPairs;
  const size_t n = pairs ? data.workers.size() : data.positive.size();
  std::vector<uint8_t> bytes;
  bytes.reserve(57 + 4 * n * (pairs ? 4 : 2) + 4);
  PutU32(bytes, kCheckpointMagic);
  PutU32(bytes, kCheckpointVersion);
  PutU64(bytes, data.wal_generation);
  PutU64(bytes, data.num_items);
  PutU64(bytes, data.num_events);
  PutU64(bytes, data.num_tasks);
  PutU64(bytes, data.num_workers);
  bytes.push_back(static_cast<uint8_t>(data.variant));
  PutU64(bytes, n);
  if (pairs) {
    PutColumn(bytes, data.workers);
    PutColumn(bytes, data.items);
    PutColumn(bytes, data.dirty);
    PutColumn(bytes, data.clean);
  } else {
    PutColumn(bytes, data.positive);
    PutColumn(bytes, data.total);
  }
  PutU32(bytes, Crc32(bytes.data(), bytes.size()));

  const std::string tmp = path + ".tmp";
  DQM_ASSIGN_OR_RETURN(
      int fd, io::Open(fpn::kCheckpointOpen, tmp,
                       O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  Status status =
      io::WriteAll(fpn::kCheckpointWrite, fd, bytes.data(), bytes.size(), tmp);
  if (status.ok()) status = io::Fsync(fpn::kCheckpointFsync, fd, tmp);
  ::close(fd);
  if (!status.ok()) return status;
  DQM_RETURN_NOT_OK(io::Rename(fpn::kCheckpointRename, tmp, path));
  // The rename is the commit point; syncing the directory makes it stick
  // across power loss.
  return io::FsyncParentDir(fpn::kCheckpointDirsync, path);
}

Result<CheckpointData> ReadCheckpointFile(const std::string& path) {
  DQM_ASSIGN_OR_RETURN(
      int fd, io::Open(fpn::kCheckpointOpen, path, O_RDONLY | O_CLOEXEC));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = ErrnoError("stat", path);
    ::close(fd);
    return status;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  Status read = bytes.empty()
                    ? Status::OK()
                    : io::ReadExactAt(fpn::kCheckpointRead, fd, bytes.data(),
                                      bytes.size(), 0, path);
  ::close(fd);
  DQM_RETURN_NOT_OK(read);
  return DecodeCheckpoint(std::span<const uint8_t>(bytes), path);
}

Result<CheckpointData> DecodeCheckpoint(std::span<const uint8_t> bytes,
                                        const std::string& context) {
  auto corrupt = [&context](const char* why) {
    return Status::IOError(
        StrFormat("corrupt checkpoint '%s': %s", context.c_str(), why));
  };
  constexpr size_t kFixedBytes = 57;  // through the column length
  if (bytes.size() < kFixedBytes + 4) return corrupt("file too short");
  if (Crc32(bytes.data(), bytes.size() - 4) !=
      GetU32(bytes.data() + bytes.size() - 4)) {
    return corrupt("checksum mismatch");
  }
  if (GetU32(bytes.data()) != kCheckpointMagic) return corrupt("bad magic");
  if (GetU32(bytes.data() + 4) != kCheckpointVersion) {
    return corrupt("unsupported version");
  }
  CheckpointData data;
  data.wal_generation = GetU64(bytes.data() + 8);
  data.num_items = GetU64(bytes.data() + 16);
  data.num_events = GetU64(bytes.data() + 24);
  data.num_tasks = GetU64(bytes.data() + 32);
  data.num_workers = GetU64(bytes.data() + 40);
  const uint8_t variant = bytes[48];
  if (variant > 1) return corrupt("unknown variant");
  data.variant = static_cast<CheckpointData::Variant>(variant);
  const uint64_t n = GetU64(bytes.data() + 49);
  const size_t num_columns =
      data.variant == CheckpointData::Variant::kPairs ? 4 : 2;
  // Bound the column count before multiplying: a crafted n (e.g. 2^60 with
  // 4 columns) wraps 4*n*num_columns in uint64, slips past the equality
  // check, and turns into a giant resize instead of a corruption error.
  if (n > (bytes.size() - kFixedBytes - 4) / (4 * num_columns)) {
    return corrupt("column count exceeds file size");
  }
  if (bytes.size() != kFixedBytes + 4 * n * num_columns + 4) {
    return corrupt("column size mismatch");
  }
  const uint8_t* cols = bytes.data() + kFixedBytes;
  uint64_t events = 0;
  if (data.variant == CheckpointData::Variant::kPairs) {
    GetColumn(cols + 0 * 4 * n, n, data.workers);
    GetColumn(cols + 1 * 4 * n, n, data.items);
    GetColumn(cols + 2 * 4 * n, n, data.dirty);
    GetColumn(cols + 3 * 4 * n, n, data.clean);
    for (size_t i = 0; i < n; ++i) {
      // Widened before summing so a crafted pair of ~2^31 counts cannot
      // wrap to a small value and pass the vote-count consistency check.
      const uint64_t slot_votes =
          static_cast<uint64_t>(data.dirty[i]) + data.clean[i];
      if (slot_votes == 0) return corrupt("empty pair slot");
      DQM_RETURN_NOT_OK(ValidateVoteBounds(0, data.workers[i], data.items[i],
                                           data.num_items));
      events += slot_votes;
    }
  } else {
    if (n != data.num_items) return corrupt("tally column length != items");
    GetColumn(cols + 0 * 4 * n, n, data.positive);
    GetColumn(cols + 1 * 4 * n, n, data.total);
    for (size_t i = 0; i < n; ++i) {
      if (data.positive[i] > data.total[i]) {
        return corrupt("positive tally exceeds total");
      }
      events += data.total[i];
    }
  }
  if (events != data.num_events) return corrupt("vote count mismatch");
  if (data.num_events > 0 && (data.num_tasks == 0 || data.num_workers == 0)) {
    return corrupt("votes without task/worker bounds");
  }
  if (data.num_tasks > static_cast<uint64_t>(kMaxTaskId) + 1 ||
      data.num_workers > static_cast<uint64_t>(kMaxWorkerId) + 1) {
    return corrupt("task/worker bound exceeds id cap");
  }
  return data;
}

Status EmitCheckpointVotes(
    const CheckpointData& data,
    const std::function<Status(std::span<const VoteEvent>)>& apply) {
  if (data.num_events == 0) return Status::OK();
  std::vector<VoteEvent> batch;
  batch.reserve(kEmitBatchVotes);
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    Status status = apply(std::span<const VoteEvent>(batch));
    batch.clear();
    return status;
  };
  // All synthetic votes carry the max observed task id so the rebuilt
  // pipeline's task bound lands exactly on num_tasks (tasks are not part of
  // the compacted state — only their bound survives a checkpoint).
  const uint32_t task = static_cast<uint32_t>(data.num_tasks - 1);
  auto emit = [&](uint32_t worker, uint32_t item, Vote vote,
                  uint32_t count) -> Status {
    for (uint32_t i = 0; i < count; ++i) {
      batch.push_back(VoteEvent{task, worker, item, vote});
      if (batch.size() == kEmitBatchVotes) DQM_RETURN_NOT_OK(flush());
    }
    return Status::OK();
  };
  if (data.variant == CheckpointData::Variant::kPairs) {
    for (size_t slot = 0; slot < data.workers.size(); ++slot) {
      DQM_RETURN_NOT_OK(emit(data.workers[slot], data.items[slot],
                             Vote::kDirty, data.dirty[slot]));
      DQM_RETURN_NOT_OK(emit(data.workers[slot], data.items[slot],
                             Vote::kClean, data.clean[slot]));
    }
  } else {
    // Tally-only panels never read (worker, item) pairs, so the synthetic
    // worker id only has to restore the worker *bound*.
    const uint32_t worker = static_cast<uint32_t>(data.num_workers - 1);
    for (size_t item = 0; item < data.total.size(); ++item) {
      DQM_RETURN_NOT_OK(emit(worker, static_cast<uint32_t>(item), Vote::kDirty,
                             data.positive[item]));
      DQM_RETURN_NOT_OK(
          emit(worker, static_cast<uint32_t>(item), Vote::kClean,
               data.total[item] - data.positive[item]));
    }
  }
  return flush();
}

}  // namespace dqm::crowd
