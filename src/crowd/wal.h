#ifndef DQM_CROWD_WAL_H_
#define DQM_CROWD_WAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crowd/response_log.h"
#include "crowd/vote.h"

namespace dqm::crowd {

// ---------------------------------------------------------------------------
// Shared vote validation.
//
// Every byte stream that turns into VoteEvents — the CSV reader
// (ResponseLogIo::FromCsv) and the WAL tail replay — funnels through the
// same bounds check, so a corrupt or adversarial input is rejected as a
// Status before it can reach the serving pipeline. The id caps exist
// because several consumers allocate O(max id) state (Dawid-Skene sizes
// per-worker confusion vectors, SWITCH segments per task): without them a
// single row claiming worker 4294967295 drives a multi-gigabyte allocation
// on the serving path.
// ---------------------------------------------------------------------------

/// Largest worker id accepted from persisted/external vote streams
/// (~16.7M distinct workers; far above any plausible crowd, small enough
/// that O(num_workers) estimator state stays sane).
inline constexpr uint32_t kMaxWorkerId = (1u << 24) - 1;
/// Largest task id accepted (~268M tasks).
inline constexpr uint32_t kMaxTaskId = (1u << 28) - 1;

/// Bounds check for one externally sourced vote: item inside the session's
/// universe, worker/task under the allocation caps. OK or OutOfRange.
Status ValidateVoteBounds(uint32_t task, uint32_t worker, uint32_t item,
                          size_t num_items);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `size` bytes, chainable
/// through `seed` (pass a previous return value to continue a running
/// checksum). Guards WAL records and checkpoint files against torn writes
/// and bit rot.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Size of the WAL file header (magic + version + generation). Record bytes
/// start at this offset; replication ships the body in [kWalHeaderBytes,
/// durable_size) slices, so the offset is part of the shipped-segment
/// contract.
inline constexpr size_t kWalHeaderBytes = 16;

// ---------------------------------------------------------------------------
// VoteWal — the per-session write-ahead vote log (format + file layer).
//
// File layout (all integers little-endian):
//
//   header:  u32 magic 'DWAL' | u32 version (1) | u64 generation
//   record:  u32 payload_size | u32 crc32(payload) | payload
//   payload: u32 vote_count | vote_count x { u32 task, u32 worker,
//                                            u32 item,  u8 vote }
//
// Appends serialize into a user-space buffer; WriteBuffered() hands the
// buffer to write(2) (after which the record survives a process kill, via
// the page cache); Sync() adds fsync(2) (after which it survives power
// loss). Group-commit policy — when to write and when to sync — lives in
// the owner (engine::SessionDurability); this class is single-threaded by
// contract and owns only the format and the fd.
//
// A failed write(2) or fsync(2) SEALS the log: the file is cut back to the
// last fsync-acknowledged boundary (so bytes of a rejected batch can never
// resurrect at recovery as CRC-valid records, and later appends can never
// land after torn bytes) and every subsequent Append/WriteBuffered/Sync is
// refused until Reset() re-establishes a clean file. Without the seal, an
// append after a partial write would be acknowledged durable yet sit past
// a torn record that recovery truncates at — silently losing it.
//
// The `generation` ties the WAL to its checkpoint: a checkpoint commit
// writes the snapshot carrying generation G+1, then Reset(G+1) truncates
// the WAL to a fresh header. Recovery compares the two (see
// SessionDurability::Recover) to detect a crash between those two steps.
// ---------------------------------------------------------------------------
class VoteWal {
 public:
  VoteWal() = default;
  ~VoteWal();
  VoteWal(VoteWal&& other) noexcept;
  VoteWal& operator=(VoteWal&& other) noexcept;
  VoteWal(const VoteWal&) = delete;
  VoteWal& operator=(const VoteWal&) = delete;

  /// Opens (or creates) the WAL at `path`. A fresh/empty file gets a
  /// generation-1 header (synced); an existing file must carry a valid
  /// header. IOError on filesystem failure, InvalidArgument on a foreign or
  /// future-versioned header.
  static Result<VoteWal> Open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  uint64_t generation() const { return generation_; }

  /// Serializes one record (the whole batch) into the user-space buffer.
  /// No syscall — the votes are NOT yet durable in any sense. No-op on a
  /// sealed log.
  void Append(std::span<const VoteEvent> events);

  /// write(2)s everything buffered. After OK the records survive a process
  /// kill (page cache), not a power loss. On error the log seals (see
  /// class comment): the buffer is dropped, the file is cut back to the
  /// last synced boundary, and the batch must be rejected by the owner.
  Status WriteBuffered();

  /// WriteBuffered + fsync(2) — the full group-commit durability point.
  /// A failed fsync also seals: the written-but-unacknowledged records are
  /// truncated away so a rejected batch cannot be replayed at recovery.
  Status Sync();

  /// True once an I/O failure sealed the log. Appends are refused until a
  /// Reset() (the checkpoint commit tail) re-establishes a clean file.
  bool sealed() const { return sealed_; }

  /// The error every operation on a sealed log returns (carries the
  /// original failure's message).
  Status SealedStatus() const;

  /// Test fault injection: the next WriteBuffered (resp. the fsync inside
  /// the next Sync) fails as if the device errored, exercising the seal
  /// path without a real I/O failure.
  void InjectWriteErrorForTest() { fail_next_write_ = true; }
  void InjectSyncErrorForTest() { fail_next_sync_ = true; }

  /// Bytes currently sitting in the user-space buffer (lost on kill).
  size_t buffered_bytes() const { return buffer_.size(); }
  /// Cumulative bytes handed to write(2) since Open.
  uint64_t bytes_written() const { return bytes_written_; }
  /// File size covered by the last acknowledged fsync — the boundary every
  /// durability guarantee (and the replication ship cursor) is defined
  /// against. Bytes past it may be torn or belong to rejected batches.
  uint64_t durable_size() const { return durable_size_; }
  /// Heap owned by the buffer + replay scratch — feeds the session's
  /// RetainedBytes accounting.
  size_t RetainedBytes() const {
    return buffer_.capacity() + replay_scratch_.capacity() * sizeof(VoteEvent);
  }

  struct ReplayStats {
    uint64_t votes = 0;
    uint64_t records = 0;
    /// Trailing torn / corrupt / bounds-violating records dropped (the file
    /// was physically truncated back to the last intact record).
    uint64_t torn_records = 0;
  };

  /// Scans every record after the header, verifying framing, CRC, and vote
  /// bounds (ValidateVoteBounds), handing each intact batch to `apply` in
  /// file order. The first bad record truncates the file at the end of the
  /// preceding record — a torn group commit cleanly disappears instead of
  /// poisoning recovery — and stops the scan. Call before the first Append;
  /// the WAL stays appendable afterwards. An `apply` error propagates
  /// (recovery fails) without truncating.
  Result<ReplayStats> ReplayAndTruncate(
      size_t num_items,
      const std::function<Status(std::span<const VoteEvent>)>& apply);

  /// Discards the buffer and every record: truncates to a fresh header
  /// carrying `new_generation`, then fsyncs. The checkpoint-commit tail;
  /// on success it also unseals the log (the checkpoint now carries every
  /// vote the dropped tail ever held).
  Status Reset(uint64_t new_generation);

 private:
  Status WriteHeader(uint64_t generation);
  /// Marks the log sealed after `cause` and cuts the file back to
  /// `durable_size_` (best effort — the seal alone already stops appends
  /// from landing past the damage).
  void Seal(const Status& cause);

  int fd_ = -1;
  std::string path_;
  uint64_t generation_ = 0;
  uint64_t bytes_written_ = 0;
  /// File size covered by the last successful fsync — the boundary Seal()
  /// truncates back to.
  uint64_t durable_size_ = 0;
  /// File size including write(2)n-but-unsynced bytes.
  uint64_t written_size_ = 0;
  bool sealed_ = false;
  std::string seal_reason_;
  bool fail_next_write_ = false;
  bool fail_next_sync_ = false;
  std::vector<uint8_t> buffer_;
  std::vector<VoteEvent> replay_scratch_;
};

// ---------------------------------------------------------------------------
// Record scanning — shared between recovery and replication.
// ---------------------------------------------------------------------------

struct WalScanResult {
  uint64_t votes = 0;
  uint64_t records = 0;
  /// Byte offset (into the scanned body) just past the last intact record.
  size_t clean_end = 0;
  /// True when damage (bad framing, CRC mismatch, out-of-bounds vote) or a
  /// short tail was found after `clean_end`.
  bool torn = false;
};

/// Scans `body` (WAL record frames, no file header) record by record,
/// verifying framing, CRC, and vote bounds, handing each intact batch to
/// `apply` in order. Stops at the first damaged or incomplete record and
/// reports it via `torn`/`clean_end` — the caller decides whether that means
/// "truncate the tail" (recovery) or "reject the artifact" (a shipped
/// segment must scan clean end to end). An `apply` error propagates.
Result<WalScanResult> ScanWalRecords(
    std::span<const uint8_t> body, size_t num_items,
    const std::function<Status(std::span<const VoteEvent>)>& apply,
    std::vector<VoteEvent>& scratch);

// ---------------------------------------------------------------------------
// WAL segments — the unit of replication shipping.
//
// A segment is a self-describing slice of the primary WAL's fsync-
// acknowledged body: `payload` holds raw record frames copied from
// [start_offset, start_offset + payload.size()) of wal.log, and the header
// pins where the slice belongs (generation, 1-based sequence number within
// the generation, byte offset) plus the primary's cumulative durable vote
// count after the slice (feeds replica lag) and the fencing token it was
// shipped under (a promoted standby raises the fence so a zombie primary's
// stale segments are rejected at the transport). The trailing CRC covers
// header + payload, so a torn upload is detected before any byte is applied.
//
// Wire layout (little-endian):
//   u32 magic 'DSEG' | u32 version (1) | u64 generation | u64 seq
//   | u64 start_offset | u64 cum_votes | u64 fencing_token
//   | u32 payload_size | payload | u32 crc32(all preceding bytes)
// ---------------------------------------------------------------------------
struct WalSegment {
  uint64_t generation = 0;
  uint64_t seq = 0;           // 1-based within a generation
  uint64_t start_offset = 0;  // byte offset of payload within wal.log
  uint64_t cum_votes = 0;     // primary durable votes after this segment
  uint64_t fencing_token = 0;
  std::vector<uint8_t> payload;
};

/// Serializes `segment` (header + payload + CRC) into `out` (cleared first).
void EncodeWalSegment(const WalSegment& segment, std::vector<uint8_t>& out);

/// Parses + fully validates one encoded segment (magic, version, size
/// framing, CRC). `context` names the artifact for error messages. Any
/// damage is a hard error — a segment is applied whole or not at all.
Result<WalSegment> DecodeWalSegment(std::span<const uint8_t> bytes,
                                    const std::string& context);

// ---------------------------------------------------------------------------
// Checkpoints — the kCounts CompactedVoteStore state as a snapshot format.
//
// A checkpoint serializes exactly the state a kCounts retention log keeps:
// either the compacted per-(worker, item) count matrix in its reproducible
// first-arrival slot order (kPairs — serialized kCounts logs and striped
// logs that maintain pair counts, shards concatenated in stripe order), or
// the per-item tally columns (kTallies — striped tally-only panels, which
// by construction have no matrix consumer). Restoring is a synthetic
// replay: EmitCheckpointVotes re-emits the counts as a vote stream in slot
// order, which rebuilds a bit-identical store through the ordinary ingest
// path — no deserialization backdoor into the log's internals.
// ---------------------------------------------------------------------------
struct CheckpointData {
  enum class Variant : uint8_t {
    kPairs = 0,    // columns are slot-ordered worker/item/dirty/clean
    kTallies = 1,  // columns are per-item positive/total
  };

  /// The WAL generation this snapshot supersedes: after the checkpoint is
  /// committed the live WAL is Reset() to this generation.
  uint64_t wal_generation = 1;
  uint64_t num_items = 0;
  uint64_t num_events = 0;
  uint64_t num_tasks = 0;
  uint64_t num_workers = 0;
  Variant variant = Variant::kPairs;
  /// kPairs: parallel slot-ordered columns (length = #pairs).
  std::vector<uint32_t> workers;
  std::vector<uint32_t> items;
  std::vector<uint32_t> dirty;
  std::vector<uint32_t> clean;
  /// kTallies: parallel per-item columns (length = num_items).
  std::vector<uint32_t> positive;
  std::vector<uint32_t> total;

  size_t MemoryBytes() const {
    return (workers.capacity() + items.capacity() + dirty.capacity() +
            clean.capacity() + positive.capacity() + total.capacity()) *
           sizeof(uint32_t);
  }
};

/// Snapshots a quiescent kCounts log (no committer may be running — the
/// caller holds the WAL quiesce + reconcile pause). Picks kPairs when the
/// log maintains pair counts, kTallies otherwise. FailedPrecondition for a
/// kFullEvents log (checkpoints are a kCounts format by design).
Result<CheckpointData> CheckpointFromLog(const ResponseLog& log,
                                         uint64_t wal_generation);

/// Atomically writes `data` to `path`: serialize + CRC into `path`.tmp,
/// fsync, rename over `path`, fsync the parent directory.
Status WriteCheckpointFile(const std::string& path, const CheckpointData& data);

/// Reads + fully validates a checkpoint (magic, version, CRC, column shape,
/// count consistency). A checkpoint is rename-committed, so any damage here
/// is real corruption and fails recovery loudly rather than silently.
Result<CheckpointData> ReadCheckpointFile(const std::string& path);

/// Validates + parses an in-memory checkpoint image (the byte-level half of
/// ReadCheckpointFile) — used by the standby applier, which receives
/// checkpoints as transport artifacts rather than local files. `context`
/// names the source for error messages.
Result<CheckpointData> DecodeCheckpoint(std::span<const uint8_t> bytes,
                                        const std::string& context);

/// Re-emits the checkpoint's state as a synthetic vote stream, in slot
/// (kPairs) or item (kTallies) order, batched through `apply`. Feeding the
/// stream to an empty pipeline rebuilds tallies, pair counts, and
/// task/worker bounds bit-identically (see CompactedVoteStore's
/// first-arrival slot-order guarantee).
Status EmitCheckpointVotes(
    const CheckpointData& data,
    const std::function<Status(std::span<const VoteEvent>)>& apply);

}  // namespace dqm::crowd

#endif  // DQM_CROWD_WAL_H_
