#include "crowd/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/failpoint.h"
#include "common/string_util.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace dqm::crowd::io {

namespace {

/// RetryOptions, decomposed into atomics so readers on the I/O paths never
/// take a lock (Set is a setup-path operation).
std::atomic<int> g_max_attempts{RetryOptions{}.max_attempts};
std::atomic<uint64_t> g_backoff_initial_us{RetryOptions{}.backoff_initial_us};
std::atomic<uint64_t> g_backoff_max_us{RetryOptions{}.backoff_max_us};

struct IoMetrics {
  telemetry::Counter* retries;
  telemetry::Counter* exhausted;
};

const IoMetrics& Metrics() {
  static const IoMetrics metrics = [] {
    auto& registry = telemetry::MetricsRegistry::Global();
    namespace names = telemetry::metric_names;
    return IoMetrics{registry.GetCounter(names::kWalRetriesTotal),
                     registry.GetCounter(names::kWalRetryExhaustedTotal)};
  }();
  return metrics;
}

Status ErrnoError(const char* op, const std::string& path, int err) {
  return Status::IOError(
      StrFormat("%s '%s': %s", op, path.c_str(), std::strerror(err)));
}

/// One syscall's transient-errno budget: the first transient error retries
/// immediately, later ones back off exponentially up to the cap.
class TransientRetrier {
 public:
  TransientRetrier()
      : retries_left_(g_max_attempts.load(std::memory_order_relaxed) - 1),
        backoff_us_(g_backoff_initial_us.load(std::memory_order_relaxed)),
        backoff_max_us_(g_backoff_max_us.load(std::memory_order_relaxed)) {}

  /// True if `err` is transient and budget remains — the caller loops. The
  /// exhaustion counter only ticks when a transient error RAN OUT of
  /// budget; non-transient errors surface without touching either counter.
  bool ShouldRetry(int err) {
    if (!IsTransientErrno(err)) return false;
    if (retries_left_ <= 0) {
      Metrics().exhausted->Increment();
      return false;
    }
    --retries_left_;
    Metrics().retries->Increment();
    if (slept_once_) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff_us_));
      backoff_us_ = std::min(backoff_us_ * 2, backoff_max_us_);
    }
    slept_once_ = true;
    return true;
  }

 private:
  int retries_left_;
  uint64_t backoff_us_;
  uint64_t backoff_max_us_;
  bool slept_once_ = false;
};

}  // namespace

bool IsTransientErrno(int err) {
  if (err == EINTR || err == EAGAIN) return true;
  // On Linux/BSD EWOULDBLOCK == EAGAIN and this branch compiles away; POSIX
  // permits them to be distinct values (SVR4-lineage systems), and a
  // duplicate-case `err == EWOULDBLOCK` above would then silently be the
  // only thing keeping the distinct value transient — spell the platform
  // split explicitly so neither spelling regresses.
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
  if (err == EWOULDBLOCK) return true;
#endif
  return false;
}

RetryOptions GetRetryOptions() {
  RetryOptions options;
  options.max_attempts = g_max_attempts.load(std::memory_order_relaxed);
  options.backoff_initial_us =
      g_backoff_initial_us.load(std::memory_order_relaxed);
  options.backoff_max_us = g_backoff_max_us.load(std::memory_order_relaxed);
  return options;
}

void SetRetryOptions(const RetryOptions& options) {
  g_max_attempts.store(options.max_attempts < 1 ? 1 : options.max_attempts,
                       std::memory_order_relaxed);
  g_backoff_initial_us.store(options.backoff_initial_us,
                             std::memory_order_relaxed);
  g_backoff_max_us.store(options.backoff_max_us, std::memory_order_relaxed);
}

Result<int> Open(const char* failpoint, const std::string& path, int flags,
                 mode_t mode) {
  TransientRetrier retrier;
  for (;;) {
    auto injected = failpoint::Eval(failpoint);
    int err;
    if (injected.op == failpoint::EvalResult::Op::kError) {
      err = injected.injected_errno;
    } else {
      // kReturnEarly has no fd to fake; treat it as a clean pass-through.
      int fd = ::open(path.c_str(), flags, mode);
      if (fd >= 0) return fd;
      err = errno;
    }
    if (retrier.ShouldRetry(err)) continue;
    return ErrnoError("open", path, err);
  }
}

Status WriteAll(const char* failpoint, int fd, const uint8_t* data,
                size_t size, const std::string& path) {
  TransientRetrier retrier;
  size_t done = 0;
  while (done < size) {
    auto injected = failpoint::Eval(failpoint);
    if (injected.op == failpoint::EvalResult::Op::kReturnEarly) {
      return Status::OK();  // lost write: caller believes it landed
    }
    ssize_t n;
    int err = 0;
    if (injected.op == failpoint::EvalResult::Op::kError) {
      n = -1;
      err = injected.injected_errno;
    } else {
      n = ::write(fd, data + done, size - done);
      if (n < 0) err = errno;
    }
    if (n < 0) {
      if (retrier.ShouldRetry(err)) continue;
      return ErrnoError("write", path, err);
    }
    done += static_cast<size_t>(n);  // short write: progress, not an error
  }
  return Status::OK();
}

Status ReadExactAt(const char* failpoint, int fd, uint8_t* data, size_t size,
                   uint64_t offset, const std::string& path) {
  TransientRetrier retrier;
  size_t done = 0;
  while (done < size) {
    auto injected = failpoint::Eval(failpoint);
    ssize_t n;
    int err = 0;
    if (injected.op == failpoint::EvalResult::Op::kError) {
      n = -1;
      err = injected.injected_errno;
    } else {
      n = ::pread(fd, data + done, size - done,
                  static_cast<off_t>(offset + done));
      if (n < 0) err = errno;
    }
    if (n < 0) {
      if (retrier.ShouldRetry(err)) continue;
      return ErrnoError("read", path, err);
    }
    if (n == 0) {
      return Status::IOError(
          StrFormat("read '%s': unexpected end of file", path.c_str()));
    }
    done += static_cast<size_t>(n);  // short read: keep going
  }
  return Status::OK();
}

Status Fsync(const char* failpoint, int fd, const std::string& path) {
  TransientRetrier retrier;
  for (;;) {
    auto injected = failpoint::Eval(failpoint);
    if (injected.op == failpoint::EvalResult::Op::kReturnEarly) {
      return Status::OK();  // lost durability point
    }
    int err = 0;
    if (injected.op == failpoint::EvalResult::Op::kError) {
      err = injected.injected_errno;
    } else if (::fsync(fd) != 0) {
      err = errno;
    }
    if (err == 0) return Status::OK();
    if (retrier.ShouldRetry(err)) continue;
    return ErrnoError("fsync", path, err);
  }
}

Status FsyncParentDir(const char* failpoint, const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  TransientRetrier retrier;
  for (;;) {
    auto injected = failpoint::Eval(failpoint);
    if (injected.op == failpoint::EvalResult::Op::kReturnEarly) {
      return Status::OK();  // dirent never synced
    }
    int err = 0;
    const char* op = "fsync directory";
    if (injected.op == failpoint::EvalResult::Op::kError) {
      err = injected.injected_errno;
    } else {
      int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
      if (fd < 0) {
        err = errno;
        op = "open directory";
      } else {
        if (::fsync(fd) != 0) err = errno;
        ::close(fd);
      }
    }
    if (err == 0) return Status::OK();
    if (retrier.ShouldRetry(err)) continue;
    return ErrnoError(op, dir, err);
  }
}

Status Rename(const char* failpoint, const std::string& from,
              const std::string& to) {
  TransientRetrier retrier;
  for (;;) {
    auto injected = failpoint::Eval(failpoint);
    if (injected.op == failpoint::EvalResult::Op::kReturnEarly) {
      return Status::OK();  // commit point silently skipped
    }
    int err = 0;
    if (injected.op == failpoint::EvalResult::Op::kError) {
      err = injected.injected_errno;
    } else if (::rename(from.c_str(), to.c_str()) != 0) {
      err = errno;
    }
    if (err == 0) return Status::OK();
    if (retrier.ShouldRetry(err)) continue;
    return ErrnoError("rename", from, err);
  }
}

Status Ftruncate(const char* failpoint, int fd, uint64_t size,
                 const std::string& path) {
  TransientRetrier retrier;
  for (;;) {
    auto injected = failpoint::Eval(failpoint);
    if (injected.op == failpoint::EvalResult::Op::kReturnEarly) {
      return Status::OK();
    }
    int err = 0;
    if (injected.op == failpoint::EvalResult::Op::kError) {
      err = injected.injected_errno;
    } else if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
      err = errno;
    }
    if (err == 0) return Status::OK();
    if (retrier.ShouldRetry(err)) continue;
    return ErrnoError("truncate", path, err);
  }
}

}  // namespace dqm::crowd::io
