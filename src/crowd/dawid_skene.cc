#include "crowd/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "telemetry/metrics.h"
#include "telemetry/metric_names.h"

namespace dqm::crowd {

DawidSkene::DawidSkene(const Options& options) : options_(options) {
  DQM_CHECK_GT(options.max_iterations, 0u);
  DQM_CHECK_GT(options.max_incremental_sweeps, 0u);
  DQM_CHECK_GT(options.smoothing, 0.0);
}

void DawidSkene::ColdStart(const ResponseLog& log, Result& result) const {
  const size_t num_items = log.num_items();
  const size_t num_workers = std::max<size_t>(log.num_workers(), 1);
  result.sensitivity.assign(num_workers, 0.8);
  result.specificity.assign(num_workers, 0.8);
  // Initialize posteriors from the majority vote (soft: fraction of dirty
  // votes, pulled toward 0.5 by one pseudo-vote each way).
  result.posterior_dirty.assign(num_items, 0.5);
  for (size_t i = 0; i < num_items; ++i) {
    double pos = log.positive_votes(i);
    double tot = log.total_votes(i);
    result.posterior_dirty[i] = (pos + 1.0) / (tot + 2.0);
  }
  result.prior_dirty = 0.5;
  result.iterations = 0;
  result.converged = false;
}

DawidSkene::Result DawidSkene::Fit(const ResponseLog& log) const {
  Result result;
  Workspace workspace;
  ColdStart(log, result);
  RunSweeps(log, result, workspace, options_.max_iterations,
            /*refresh_posteriors=*/false);
  return result;
}

size_t DawidSkene::FitIncremental(const ResponseLog& log, Result& state,
                                  Workspace& workspace) const {
  const bool warm = state.posterior_dirty.size() == log.num_items() &&
                    !state.sensitivity.empty();
  size_t max_sweeps = options_.max_incremental_sweeps;
  if (!warm) {
    ColdStart(log, state);
    max_sweeps = options_.max_iterations;
  } else if (state.sensitivity.size() < log.num_workers()) {
    // Workers unseen by the previous fit enter at the cold-start rates.
    state.sensitivity.resize(log.num_workers(), 0.8);
    state.specificity.resize(log.num_workers(), 0.8);
  }
  // Warm starts keep the learned worker rates and prior but *refresh* the
  // posteriors with one E-step before sweeping: new votes may have flipped
  // an item's evidence, and carrying the stale posterior into the first
  // M-step can lock EM into the old basin (a worker outvoted on an item
  // would be scored against the outdated label). Re-deriving posteriors
  // from current counts + learned rates starts the sweep loop where the
  // cold fit's fixpoint lives, which is what keeps warm and cold estimates
  // within the declared tolerance.
  return RunSweeps(log, state, workspace, max_sweeps,
                   /*refresh_posteriors=*/warm);
}

size_t DawidSkene::RunSweeps(const ResponseLog& log, Result& result,
                             Workspace& workspace, size_t max_sweeps,
                             bool refresh_posteriors) const {
  const size_t num_items = log.num_items();
  const size_t num_workers = std::max<size_t>(log.num_workers(), 1);
  const double s = options_.smoothing;

  if (log.num_events() == 0) {
    result.prior_dirty = 0.5;
    result.iterations = 0;
    result.converged = true;
    return 0;
  }

  // The count matrix: maintained by the log under kCounts retention (one
  // block serialized, one block per stripe on concurrently ingested logs),
  // rebuilt once per fit from events under kFullEvents. Serialized and
  // replay paths insert pairs in first-arrival order, so the sweeps visit
  // identical slot sequences either way; striped blocks reorder slots
  // across blocks, which only perturbs float summation order (the declared
  // EM tolerance).
  workspace.blocks.clear();
  if (!log.AppendCountMatrixBlocks(workspace.blocks)) {
    workspace.scratch_counts.Clear();
    for (const VoteEvent& event : log.events()) {
      workspace.scratch_counts.Add(event.worker, event.item, event.vote);
    }
    workspace.blocks.push_back(&workspace.scratch_counts);
  }

  // ---- E step (shared): per-item posteriors from worker rates (log
  // domain). Returns the largest posterior move.
  auto e_step = [&]() {
    // Per-worker log-rate tables first: the pair sweep below is then pure
    // multiply-add, and log() cost scales with #workers, not #pairs.
    workspace.log_sens.resize(num_workers);
    workspace.log_one_minus_sens.resize(num_workers);
    workspace.log_spec.resize(num_workers);
    workspace.log_one_minus_spec.resize(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      double sens = std::clamp(result.sensitivity[w], 1e-6, 1.0 - 1e-6);
      double spec = std::clamp(result.specificity[w], 1e-6, 1.0 - 1e-6);
      workspace.log_sens[w] = std::log(sens);
      workspace.log_one_minus_sens[w] = std::log(1.0 - sens);
      workspace.log_spec[w] = std::log(spec);
      workspace.log_one_minus_spec[w] = std::log(1.0 - spec);
    }
    workspace.log_dirty.assign(num_items, std::log(result.prior_dirty));
    workspace.log_clean.assign(num_items, std::log(1.0 - result.prior_dirty));
    for (const CompactedVoteStore* block : workspace.blocks) {
      const uint32_t* pair_worker = block->workers().data();
      const uint32_t* pair_item = block->items().data();
      const uint32_t* pair_dirty = block->dirty_counts().data();
      const uint32_t* pair_clean = block->clean_counts().data();
      const size_t num_pairs = block->num_pairs();
      // Pass 1 — per-pair contribution columns: gather two rate-table
      // entries, two converts, two FMAs per output lane, no cross-lane
      // dependence. This is the vectorizable shape; the value and per-item
      // accumulation order are bit-identical to the fused loop it replaced.
      workspace.pair_dirty_term.resize(num_pairs);
      workspace.pair_clean_term.resize(num_pairs);
      double* dirty_term = workspace.pair_dirty_term.data();
      double* clean_term = workspace.pair_clean_term.data();
      const double* log_sens = workspace.log_sens.data();
      const double* log_one_minus_sens = workspace.log_one_minus_sens.data();
      const double* log_spec = workspace.log_spec.data();
      const double* log_one_minus_spec = workspace.log_one_minus_spec.data();
      for (size_t pair = 0; pair < num_pairs; ++pair) {
        const uint32_t worker = pair_worker[pair];
        const double d = pair_dirty[pair];
        const double c = pair_clean[pair];
        dirty_term[pair] =
            d * log_sens[worker] + c * log_one_minus_sens[worker];
        clean_term[pair] =
            d * log_one_minus_spec[worker] + c * log_spec[worker];
      }
      // Pass 2 — scatter-accumulate by item (indexed writes may alias, so
      // this half stays scalar by construction).
      double* log_dirty = workspace.log_dirty.data();
      double* log_clean = workspace.log_clean.data();
      for (size_t pair = 0; pair < num_pairs; ++pair) {
        log_dirty[pair_item[pair]] += dirty_term[pair];
        log_clean[pair_item[pair]] += clean_term[pair];
      }
    }
    double max_delta = 0.0;
    for (size_t i = 0; i < num_items; ++i) {
      double m = std::max(workspace.log_dirty[i], workspace.log_clean[i]);
      double dirty = std::exp(workspace.log_dirty[i] - m);
      double clean = std::exp(workspace.log_clean[i] - m);
      double posterior = dirty / (dirty + clean);
      max_delta = std::max(max_delta,
                           std::abs(posterior - result.posterior_dirty[i]));
      result.posterior_dirty[i] = posterior;
    }
    return max_delta;
  };

  if (refresh_posteriors) e_step();

  result.converged = false;
  size_t sweeps = 0;
  double last_delta = 0.0;
  for (size_t iteration = 1; iteration <= max_sweeps; ++iteration) {
    // ---- M step: worker rates and the class prior from soft labels. Each
    // (worker, item) pair contributes its whole vote pile at once. Split
    // like the E sweep: a vectorizable posterior gather, then the scalar
    // per-worker scatter.
    workspace.dirty_agree.assign(num_workers, s);
    workspace.dirty_total.assign(num_workers, 2 * s);
    workspace.clean_agree.assign(num_workers, s);
    workspace.clean_total.assign(num_workers, 2 * s);
    for (const CompactedVoteStore* block : workspace.blocks) {
      const uint32_t* pair_worker = block->workers().data();
      const uint32_t* pair_item = block->items().data();
      const uint32_t* pair_dirty = block->dirty_counts().data();
      const uint32_t* pair_clean = block->clean_counts().data();
      const size_t num_pairs = block->num_pairs();
      workspace.pair_posterior.resize(num_pairs);
      double* pair_posterior = workspace.pair_posterior.data();
      const double* posterior = result.posterior_dirty.data();
      for (size_t pair = 0; pair < num_pairs; ++pair) {
        pair_posterior[pair] = posterior[pair_item[pair]];
      }
      for (size_t pair = 0; pair < num_pairs; ++pair) {
        const uint32_t worker = pair_worker[pair];
        const double d = pair_dirty[pair];
        const double c = pair_clean[pair];
        const double p = pair_posterior[pair];
        workspace.dirty_total[worker] += (d + c) * p;
        workspace.clean_total[worker] += (d + c) * (1.0 - p);
        workspace.dirty_agree[worker] += d * p;
        workspace.clean_agree[worker] += c * (1.0 - p);
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      result.sensitivity[w] = workspace.dirty_agree[w] / workspace.dirty_total[w];
      result.specificity[w] = workspace.clean_agree[w] / workspace.clean_total[w];
    }
    double prior_num = s;
    for (size_t i = 0; i < num_items; ++i) {
      prior_num += result.posterior_dirty[i];
    }
    result.prior_dirty = prior_num / (static_cast<double>(num_items) + 2 * s);

    double max_delta = e_step();
    sweeps = iteration;
    last_delta = max_delta;
    if (max_delta < options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.iterations = sweeps;
  // Fit telemetry: the warm-start regression signal in live form. A rising
  // sweeps-per-fit ratio or a convergence delta stuck above tolerance shows
  // up here long before an estimate drifts.
  {
    auto& registry = telemetry::MetricsRegistry::Global();
    static telemetry::Counter* fits =
        registry.GetCounter(telemetry::metric_names::kEmFitsTotal);
    static telemetry::Counter* total_sweeps =
        registry.GetCounter(telemetry::metric_names::kEmSweepsTotal);
    static telemetry::Counter* converged =
        registry.GetCounter(telemetry::metric_names::kEmConvergedTotal);
    static telemetry::Gauge* delta =
        registry.GetGauge(telemetry::metric_names::kEmLastConvergenceDelta);
    fits->Increment();
    total_sweeps->Add(sweeps);
    if (result.converged) converged->Increment();
    delta->Set(last_delta);
  }
  return sweeps;
}

size_t DawidSkene::DirtyCount(const Result& result) {
  size_t count = 0;
  for (double p : result.posterior_dirty) {
    if (p > 0.5) ++count;
  }
  return count;
}

}  // namespace dqm::crowd
