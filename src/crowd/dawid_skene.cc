#include "crowd/dawid_skene.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace dqm::crowd {

DawidSkene::DawidSkene(const Options& options) : options_(options) {
  DQM_CHECK_GT(options.max_iterations, 0u);
  DQM_CHECK_GT(options.smoothing, 0.0);
}

DawidSkene::Result DawidSkene::Fit(const ResponseLog& log) const {
  const size_t num_items = log.num_items();
  const size_t num_workers = std::max<size_t>(log.num_workers(), 1);
  const double s = options_.smoothing;

  Result result;
  result.sensitivity.assign(num_workers, 0.8);
  result.specificity.assign(num_workers, 0.8);

  // Initialize posteriors from the majority vote (soft: fraction of dirty
  // votes, pulled toward 0.5 by one pseudo-vote each way).
  result.posterior_dirty.assign(num_items, 0.5);
  for (size_t i = 0; i < num_items; ++i) {
    double pos = log.positive_votes(i);
    double tot = log.total_votes(i);
    result.posterior_dirty[i] = (pos + 1.0) / (tot + 2.0);
  }

  if (log.num_events() == 0) {
    result.prior_dirty = 0.5;
    result.converged = true;
    return result;
  }

  for (size_t iteration = 1; iteration <= options_.max_iterations;
       ++iteration) {
    // ---- M step: worker rates and the class prior from soft labels.
    std::vector<double> dirty_agree(num_workers, s);   // dirty & voted dirty
    std::vector<double> dirty_total(num_workers, 2 * s);
    std::vector<double> clean_agree(num_workers, s);   // clean & voted clean
    std::vector<double> clean_total(num_workers, 2 * s);
    for (const VoteEvent& event : log.events()) {
      double p = result.posterior_dirty[event.item];
      dirty_total[event.worker] += p;
      clean_total[event.worker] += 1.0 - p;
      if (event.vote == Vote::kDirty) {
        dirty_agree[event.worker] += p;
      } else {
        clean_agree[event.worker] += 1.0 - p;
      }
    }
    for (size_t w = 0; w < num_workers; ++w) {
      result.sensitivity[w] = dirty_agree[w] / dirty_total[w];
      result.specificity[w] = clean_agree[w] / clean_total[w];
    }
    double prior_num = s;
    for (size_t i = 0; i < num_items; ++i) {
      prior_num += result.posterior_dirty[i];
    }
    result.prior_dirty = prior_num / (static_cast<double>(num_items) + 2 * s);

    // ---- E step: per-item posteriors from worker rates (log domain).
    std::vector<double> log_dirty(num_items,
                                  std::log(result.prior_dirty));
    std::vector<double> log_clean(num_items,
                                  std::log(1.0 - result.prior_dirty));
    for (const VoteEvent& event : log.events()) {
      double sens = std::clamp(result.sensitivity[event.worker], 1e-6,
                               1.0 - 1e-6);
      double spec = std::clamp(result.specificity[event.worker], 1e-6,
                               1.0 - 1e-6);
      if (event.vote == Vote::kDirty) {
        log_dirty[event.item] += std::log(sens);
        log_clean[event.item] += std::log(1.0 - spec);
      } else {
        log_dirty[event.item] += std::log(1.0 - sens);
        log_clean[event.item] += std::log(spec);
      }
    }
    double max_delta = 0.0;
    for (size_t i = 0; i < num_items; ++i) {
      double m = std::max(log_dirty[i], log_clean[i]);
      double dirty = std::exp(log_dirty[i] - m);
      double clean = std::exp(log_clean[i] - m);
      double posterior = dirty / (dirty + clean);
      max_delta = std::max(max_delta,
                           std::abs(posterior - result.posterior_dirty[i]));
      result.posterior_dirty[i] = posterior;
    }
    result.iterations = iteration;
    if (max_delta < options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

size_t DawidSkene::DirtyCount(const Result& result) {
  size_t count = 0;
  for (double p : result.posterior_dirty) {
    if (p > 0.5) ++count;
  }
  return count;
}

}  // namespace dqm::crowd
