#include "crowd/log_io.h"

#include <charconv>

#include "common/csv.h"
#include "common/string_util.h"
#include "crowd/wal.h"

namespace dqm::crowd {

namespace {

Result<uint32_t> ParseU32(const std::string& text, const char* field,
                          size_t row) {
  uint32_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(
        StrFormat("row %zu: %s is not an unsigned integer: '%s'", row, field,
                  text.c_str()));
  }
  return value;
}

}  // namespace

std::string ResponseLogIo::ToCsv(const ResponseLog& log) {
  std::vector<CsvRow> rows;
  rows.reserve(log.num_events() + 1);
  rows.push_back({"task", "worker", "item", "vote"});
  for (const VoteEvent& event : log.events()) {
    rows.push_back({StrFormat("%u", event.task), StrFormat("%u", event.worker),
                    StrFormat("%u", event.item),
                    event.vote == Vote::kDirty ? "dirty" : "clean"});
  }
  return Csv::Format(rows);
}

Result<ResponseLog> ResponseLogIo::FromCsv(std::string_view text,
                                           size_t num_items) {
  DQM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows, Csv::Parse(text));
  if (rows.empty()) {
    return Status::InvalidArgument("vote log csv is empty");
  }
  const CsvRow expected_header = {"task", "worker", "item", "vote"};
  if (rows.front() != expected_header) {
    return Status::InvalidArgument(
        "vote log csv must start with header task,worker,item,vote");
  }
  ResponseLog log(num_items);
  for (size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& row = rows[r];
    if (row.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("row %zu: expected 4 fields, got %zu", r, row.size()));
    }
    DQM_ASSIGN_OR_RETURN(uint32_t task, ParseU32(row[0], "task", r));
    DQM_ASSIGN_OR_RETURN(uint32_t worker, ParseU32(row[1], "worker", r));
    DQM_ASSIGN_OR_RETURN(uint32_t item, ParseU32(row[2], "item", r));
    // Same bounds gate the WAL replay uses (crowd/wal.h): item inside the
    // universe, worker/task under the allocation caps. Without it a row
    // claiming worker 4294967295 reaches consumers that size O(max id)
    // state on the serving path.
    if (Status bounds = ValidateVoteBounds(task, worker, item, num_items);
        !bounds.ok()) {
      return Status(bounds.code(), StrFormat("row %zu: %s", r,
                                             bounds.message().c_str()));
    }
    std::string vote_text = ToLower(StripWhitespace(row[3]));
    Vote vote;
    if (vote_text == "dirty" || vote_text == "1") {
      vote = Vote::kDirty;
    } else if (vote_text == "clean" || vote_text == "0") {
      vote = Vote::kClean;
    } else {
      return Status::InvalidArgument(
          StrFormat("row %zu: vote must be dirty/clean/1/0, got '%s'", r,
                    row[3].c_str()));
    }
    log.Append(VoteEvent{task, worker, item, vote});
  }
  return log;
}

Status ResponseLogIo::WriteFile(const ResponseLog& log,
                                const std::string& path) {
  std::vector<CsvRow> rows;
  rows.reserve(log.num_events() + 1);
  rows.push_back({"task", "worker", "item", "vote"});
  for (const VoteEvent& event : log.events()) {
    rows.push_back({StrFormat("%u", event.task), StrFormat("%u", event.worker),
                    StrFormat("%u", event.item),
                    event.vote == Vote::kDirty ? "dirty" : "clean"});
  }
  return Csv::WriteFile(path, rows);
}

Result<ResponseLog> ResponseLogIo::ReadFile(const std::string& path,
                                            size_t num_items) {
  auto rows = Csv::ReadFile(path);
  if (!rows.ok()) {
    return Status(rows.status().code(),
                  StrFormat("%s: %s", path.c_str(),
                            rows.status().message().c_str()));
  }
  Result<ResponseLog> log = FromCsv(Csv::Format(*rows), num_items);
  if (!log.ok()) {
    // FromCsv errors carry `row N:` context; prefix the file so callers see
    // file:line-style provenance.
    return Status(log.status().code(),
                  StrFormat("%s: %s", path.c_str(),
                            log.status().message().c_str()));
  }
  return log;
}

}  // namespace dqm::crowd
