#ifndef DQM_CROWD_IO_H_
#define DQM_CROWD_IO_H_

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"

/// Failpoint-instrumented POSIX I/O for the durability stack.
///
/// Every syscall the WAL / checkpoint / manifest machinery issues goes
/// through these wrappers instead of the raw calls (tools/dqm_lint.py's
/// raw-syscall rule enforces this for crowd/wal.cc and
/// engine/durability.cc). Each wrapper:
///
///  - evaluates a named failpoint (common/failpoint.h) before EVERY
///    attempt, so scripted faults are indistinguishable from real ones to
///    the caller — including being retried;
///  - rides out transient errno classes (EINTR, EAGAIN/EWOULDBLOCK) with
///    bounded exponential backoff instead of surfacing them, counting
///    dqm_wal_retries_total / dqm_wal_retry_exhausted_total;
///  - treats short reads/writes as progress, not errors (the loop
///    continues without consuming retry budget).
///
/// Failpoint `return` actions (skip the syscall, report success) apply to
/// the mutating edges — write, fsync, rename, truncate — and model lost
/// I/O; open/read edges ignore them because the caller needs real bytes.
namespace dqm::crowd::io {

/// Failpoint names for the durability-stack syscall edges, one per
/// (subsystem, operation). Arm them via `--failpoints=` / DQM_FAILPOINTS,
/// e.g. `dqm.wal.fsync=error(EIO)%0.3`.
namespace fpn {
inline constexpr char kWalOpen[] = "dqm.wal.open";
inline constexpr char kWalRead[] = "dqm.wal.read";
inline constexpr char kWalWrite[] = "dqm.wal.write";
inline constexpr char kWalFsync[] = "dqm.wal.fsync";
inline constexpr char kWalTruncate[] = "dqm.wal.truncate";
inline constexpr char kCheckpointOpen[] = "dqm.checkpoint.open";
inline constexpr char kCheckpointRead[] = "dqm.checkpoint.read";
inline constexpr char kCheckpointWrite[] = "dqm.checkpoint.write";
inline constexpr char kCheckpointFsync[] = "dqm.checkpoint.fsync";
inline constexpr char kCheckpointRename[] = "dqm.checkpoint.rename";
inline constexpr char kCheckpointDirsync[] = "dqm.checkpoint.dirsync";
/// Replication transport edges (engine/replication.cc, LocalDirTransport).
inline constexpr char kReplOpen[] = "dqm.repl.open";
inline constexpr char kReplRead[] = "dqm.repl.read";
inline constexpr char kReplWrite[] = "dqm.repl.write";
inline constexpr char kReplFsync[] = "dqm.repl.fsync";
inline constexpr char kReplRename[] = "dqm.repl.rename";
inline constexpr char kReplDirsync[] = "dqm.repl.dirsync";
}  // namespace fpn

/// True for the errno classes the retry loop treats as transient: EINTR and
/// EAGAIN/EWOULDBLOCK. Spelled to stay correct on platforms where
/// EWOULDBLOCK is a distinct value rather than an alias of EAGAIN (POSIX
/// allows either; historically some SVR4-lineage systems differ).
bool IsTransientErrno(int err);

/// Budget for riding out transient errnos, process-global. The defaults
/// absorb bursts of EINTR/EAGAIN in well under a group-commit interval;
/// `--io_retry_max_attempts` and friends override them from the CLI.
struct RetryOptions {
  /// Total tries per syscall (1 = no retries).
  int max_attempts = 8;
  /// Sleep before the first retry; doubles per retry up to the cap. The
  /// first transient errno is retried immediately (EINTR is usually just a
  /// signal) — backoff kicks in from the second.
  uint64_t backoff_initial_us = 100;
  uint64_t backoff_max_us = 20'000;
};

RetryOptions GetRetryOptions();
void SetRetryOptions(const RetryOptions& options);

/// open(2). `failpoint` error actions fail the open; `return` is ignored
/// (there is no fd to fake).
Result<int> Open(const char* failpoint, const std::string& path, int flags,
                 mode_t mode = 0);

/// write(2) until `size` bytes landed.
Status WriteAll(const char* failpoint, int fd, const uint8_t* data,
                size_t size, const std::string& path);

/// pread(2) until `size` bytes arrived; hitting end-of-file first is an
/// IOError ("unexpected end of file"), not a retry.
Status ReadExactAt(const char* failpoint, int fd, uint8_t* data, size_t size,
                   uint64_t offset, const std::string& path);

/// fsync(2).
Status Fsync(const char* failpoint, int fd, const std::string& path);

/// Opens and fsyncs the directory containing `path`, so a just-renamed or
/// just-created entry survives power loss. The failpoint covers the whole
/// edge (open + fsync of the directory fd).
Status FsyncParentDir(const char* failpoint, const std::string& path);

/// rename(2) — the commit point of every tmp+rename dance.
Status Rename(const char* failpoint, const std::string& from,
              const std::string& to);

/// ftruncate(2).
Status Ftruncate(const char* failpoint, int fd, uint64_t size,
                 const std::string& path);

}  // namespace dqm::crowd::io

#endif  // DQM_CROWD_IO_H_
