#include "crowd/assignment.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"

namespace dqm::crowd {

UniformAssignment::UniformAssignment(size_t num_items, size_t items_per_task)
    : num_items_(num_items),
      items_per_task_(std::min(items_per_task, num_items)) {
  DQM_CHECK_GT(num_items, 0u);
  DQM_CHECK_GT(items_per_task, 0u);
}

std::vector<uint32_t> UniformAssignment::NextTask(Rng& rng) {
  std::vector<size_t> sample = rng.SampleIndices(num_items_, items_per_task_);
  return {sample.begin(), sample.end()};
}

PrioritizedAssignment::PrioritizedAssignment(size_t num_items,
                                             size_t num_candidates,
                                             size_t items_per_task,
                                             double epsilon)
    : num_items_(num_items),
      num_candidates_(num_candidates),
      items_per_task_(items_per_task),
      epsilon_(epsilon) {
  DQM_CHECK_GT(num_items, 0u);
  DQM_CHECK_GT(num_candidates, 0u);
  DQM_CHECK_LE(num_candidates, num_items);
  DQM_CHECK_GT(items_per_task, 0u);
  DQM_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
}

std::vector<uint32_t> PrioritizedAssignment::NextTask(Rng& rng) {
  const size_t num_complement = num_items_ - num_candidates_;
  std::vector<uint32_t> items;
  items.reserve(items_per_task_);
  std::unordered_set<uint32_t> chosen;
  // Rejection loop over distinct items; bounded because items_per_task is
  // far below the universe in all supported configurations.
  size_t attempts = 0;
  const size_t max_attempts = 100 * items_per_task_ + 1000;
  while (items.size() < std::min(items_per_task_, num_items_) &&
         attempts < max_attempts) {
    ++attempts;
    uint32_t item;
    if (num_complement == 0 || !rng.Bernoulli(epsilon_)) {
      item = static_cast<uint32_t>(rng.UniformIndex(num_candidates_));
    } else {
      item = static_cast<uint32_t>(num_candidates_ +
                                   rng.UniformIndex(num_complement));
    }
    if (chosen.insert(item).second) items.push_back(item);
  }
  return items;
}

FixedQuorumAssignment::FixedQuorumAssignment(size_t num_items,
                                             size_t items_per_task,
                                             size_t quorum, Rng deck_rng)
    : num_items_(num_items), items_per_task_(items_per_task) {
  DQM_CHECK_GT(num_items, 0u);
  DQM_CHECK_GT(items_per_task, 0u);
  DQM_CHECK_GT(quorum, 0u);
  deck_.reserve(num_items * quorum);
  for (size_t round = 0; round < quorum; ++round) {
    std::vector<size_t> perm = deck_rng.Permutation(num_items);
    for (size_t item : perm) deck_.push_back(static_cast<uint32_t>(item));
  }
}

std::vector<uint32_t> FixedQuorumAssignment::NextTask(Rng& rng) {
  std::vector<uint32_t> items;
  items.reserve(items_per_task_);
  std::unordered_set<uint32_t> chosen;
  while (items.size() < items_per_task_ && next_ < deck_.size()) {
    uint32_t item = deck_[next_++];
    if (chosen.insert(item).second) {
      items.push_back(item);
    } else {
      // The same item twice in one task is not useful; push it to the end
      // of the deck for a later task.
      deck_.push_back(item);
    }
  }
  if (items.size() < items_per_task_) {
    // Deck exhausted: top up with uniform sampling.
    while (items.size() < std::min(items_per_task_, num_items_)) {
      auto item = static_cast<uint32_t>(rng.UniformIndex(num_items_));
      if (chosen.insert(item).second) items.push_back(item);
    }
  }
  return items;
}

}  // namespace dqm::crowd
