#include "engine/engine.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"
#include "telemetry/metrics.h"
#include "telemetry/metric_names.h"

namespace dqm::engine {

DqmEngine::DqmEngine(const Options& options)
    : num_shards_(options.num_shards),
      shards_(std::make_unique<Shard[]>(options.num_shards)) {
  // invariant: Options defaults and callers guarantee a shard exists.
  DQM_CHECK_GT(num_shards_, 0u);
}

DqmEngine::Shard& DqmEngine::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % num_shards_];
}

Status DqmEngine::PrecheckName(const std::string& name) const {
  // Cheap pre-check: don't pay the O(num_items) session (or pipeline)
  // construction just to discover a bad or duplicate name.
  if (name.empty()) {
    return Status::InvalidArgument("session name must be non-empty");
  }
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  if (shard.sessions.contains(name)) {
    return Status::AlreadyExists(
        StrFormat("session '%s' is already open", name.c_str()));
  }
  return Status::OK();
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::InsertSession(
    const std::string& name,
    const std::function<std::shared_ptr<EstimationSession>()>& make_session) {
  DQM_RETURN_NOT_OK(PrecheckName(name));
  Shard& shard = ShardFor(name);
  // Construct outside the shard lock; a racing open of the same name is
  // resolved by the emplace below (first writer wins).
  std::shared_ptr<EstimationSession> session = make_session();
  MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.sessions.emplace(name, session);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("session '%s' is already open", name.c_str()));
  }
  return session;
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    const core::DataQualityMetric::Options& metric_options) {
  return InsertSession(name, [&] {
    return std::make_shared<EstimationSession>(name, num_items,
                                               metric_options);
  });
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    std::span<const std::string> specs) {
  return OpenSession(name, num_items, specs, SessionOptions());
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    std::span<const std::string> specs,
    const SessionOptions& session_options) {
  // Name first (cheap), then the specs: a bad or duplicate name never pays
  // the pipeline construction, and a typo'd spec never half-opens a
  // session.
  DQM_RETURN_NOT_OK(PrecheckName(name));
  // Serving retention default: sessions hold the compacted count matrix,
  // not the raw vote history (memory O(#pairs), not O(#votes)).
  DQM_ASSIGN_OR_RETURN(
      core::DataQualityMetric metric,
      core::DataQualityMetric::Create(num_items, specs,
                                      crowd::RetentionPolicy::kCounts));
  auto session = std::make_shared<EstimationSession>(name, std::move(metric),
                                                     session_options);
  return InsertSession(name, [&] { return session; });
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::GetSession(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  auto it = shard.sessions.find(name);
  if (it == shard.sessions.end()) {
    return Status::NotFound(
        StrFormat("no open session named '%s'", name.c_str()));
  }
  return it->second;
}

Status DqmEngine::Ingest(const std::string& name,
                         std::span<const crowd::VoteEvent> votes) {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  // The shard lock is already released: vote application only contends on
  // this session's own mutex.
  return (*session)->AddVotes(votes);
}

Status DqmEngine::Publish(const std::string& name) {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  (*session)->Publish();
  return Status::OK();
}

Result<Snapshot> DqmEngine::Query(const std::string& name) const {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  return (*session)->snapshot();
}

Status DqmEngine::QueryInto(const std::string& name, Snapshot& out) const {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  (*session)->SnapshotInto(out);
  return Status::OK();
}

std::vector<std::pair<std::string, Snapshot>> DqmEngine::QueryAll() const {
  // Collect handles shard by shard, then snapshot with no locks held: a
  // slow estimator read never extends any shard's critical section.
  std::vector<std::pair<std::string, std::shared_ptr<EstimationSession>>>
      sessions;
  for (size_t i = 0; i < num_shards_; ++i) {
    // Bind the shard once: the analysis ties shard.sessions to shard.mutex
    // through the one local, where an index expression would defeat it.
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [name, session] : shard.sessions) {
      sessions.emplace_back(name, session);
    }
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, Snapshot>> snapshots;
  snapshots.reserve(sessions.size());
  for (const auto& [name, session] : sessions) {
    snapshots.emplace_back(name, session->snapshot());
  }
  return snapshots;
}

Status DqmEngine::CloseSession(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  if (shard.sessions.erase(name) == 0) {
    return Status::NotFound(
        StrFormat("no open session named '%s'", name.c_str()));
  }
  return Status::OK();
}

size_t DqmEngine::num_sessions() const {
  size_t count = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    count += shard.sessions.size();
  }
  return count;
}

void DqmEngine::RefreshTelemetry() const {
  // Handle collection mirrors QueryAll: shard by shard under the shard
  // locks. A session's name hashes to exactly one shard and each shard map
  // holds it at most once, so a live session contributes exactly one handle
  // no matter how much open/close churn races this walk.
  std::vector<std::shared_ptr<EstimationSession>> sessions;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [name, session] : shard.sessions) {
      sessions.push_back(session);
    }
  }
  size_t retained = 0;
  for (const auto& session : sessions) {
    retained += session->RetainedBytes();
  }
  static telemetry::Gauge* sessions_open =
      telemetry::MetricsRegistry::Global().GetGauge(
          telemetry::metric_names::kEngineSessionsOpen);
  static telemetry::Gauge* retained_bytes =
      telemetry::MetricsRegistry::Global().GetGauge(
          telemetry::metric_names::kEngineRetainedBytes);
  // Set, not Add: the gauges are a point-in-time roll-up, so sessions that
  // closed since the last refresh simply stop contributing — the
  // double-report hazard of accumulating per-session deltas cannot arise.
  sessions_open->Set(static_cast<double>(sessions.size()));
  retained_bytes->Set(static_cast<double>(retained));
}

std::vector<std::string> DqmEngine::SessionNames() const {
  std::vector<std::string> names;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [name, session] : shard.sessions) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dqm::engine
