#include "engine/engine.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/string_util.h"

namespace dqm::engine {

DqmEngine::DqmEngine(const Options& options)
    : num_shards_(options.num_shards),
      shards_(std::make_unique<Shard[]>(options.num_shards)) {
  DQM_CHECK_GT(num_shards_, 0u);
}

DqmEngine::Shard& DqmEngine::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % num_shards_];
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    const core::DataQualityMetric::Options& metric_options) {
  if (name.empty()) {
    return Status::InvalidArgument("session name must be non-empty");
  }
  Shard& shard = ShardFor(name);
  {
    // Cheap pre-check: don't pay the O(num_items) session construction just
    // to discover a duplicate name.
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.sessions.contains(name)) {
      return Status::AlreadyExists(
          StrFormat("session '%s' is already open", name.c_str()));
    }
  }
  // Construct outside the shard lock; a racing open of the same name is
  // resolved by the emplace below (first writer wins).
  auto session =
      std::make_shared<EstimationSession>(name, num_items, metric_options);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.sessions.emplace(name, session);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("session '%s' is already open", name.c_str()));
  }
  return session;
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::GetSession(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(name);
  if (it == shard.sessions.end()) {
    return Status::NotFound(
        StrFormat("no open session named '%s'", name.c_str()));
  }
  return it->second;
}

Status DqmEngine::Ingest(const std::string& name,
                         std::span<const crowd::VoteEvent> votes) {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  // The shard lock is already released: vote application only contends on
  // this session's own mutex.
  return (*session)->AddVotes(votes);
}

Result<Snapshot> DqmEngine::Query(const std::string& name) const {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  return (*session)->snapshot();
}

Status DqmEngine::CloseSession(const std::string& name) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.sessions.erase(name) == 0) {
    return Status::NotFound(
        StrFormat("no open session named '%s'", name.c_str()));
  }
  return Status::OK();
}

size_t DqmEngine::num_sessions() const {
  size_t count = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    count += shards_[i].sessions.size();
  }
  return count;
}

std::vector<std::string> DqmEngine::SessionNames() const {
  std::vector<std::string> names;
  for (size_t i = 0; i < num_shards_; ++i) {
    std::lock_guard<std::mutex> lock(shards_[i].mutex);
    for (const auto& [name, session] : shards_[i].sessions) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dqm::engine
