#include "engine/engine.h"

#include <algorithm>
#include <filesystem>
#include <functional>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "engine/durability.h"
#include "telemetry/metrics.h"
#include "telemetry/metric_names.h"

namespace dqm::engine {

namespace {

/// Inverse of ParsePublishCadenceSpec — the spelling the manifest records.
std::string CadenceSpecString(const SessionOptions& options) {
  switch (options.cadence) {
    case PublishCadence::kEveryBatch:
      return "every_batch";
    case PublishCadence::kManual:
      return "manual";
    case PublishCadence::kEveryNVotes:
      return StrFormat(
          "every_n_votes:%llu",
          static_cast<unsigned long long>(options.publish_every_votes));
  }
  return "every_batch";
}

DurabilityOptions MakeDurabilityOptions(const std::string& name,
                                        const SessionOptions& options) {
  DurabilityOptions durability;
  durability.dir = options.durability_dir + "/" + PercentEncode(name);
  durability.session_name = name;
  durability.group_commit_votes = options.wal_group_commit_votes;
  durability.group_commit_ms = options.wal_group_commit_ms;
  durability.checkpoint_every_votes = options.checkpoint_every_votes;
  durability.failure_policy = options.durability_failure_policy;
  return durability;
}

Result<std::unique_ptr<SessionDurability>> CreateSessionDurability(
    const std::string& name, size_t num_items,
    std::span<const std::string> specs, const SessionOptions& options,
    bool supports_concurrent_ingest) {
  SessionManifest manifest;
  manifest.name = name;
  manifest.num_items = num_items;
  manifest.specs.assign(specs.begin(), specs.end());
  manifest.cadence = CadenceSpecString(options);
  // Record the RESOLVED stripe count (0 = serialized): an "auto" request
  // resolves against the hardware it first ran on, and recovery must
  // rebuild that layout — not re-roll it on whatever machine recovers.
  manifest.ingest_stripes =
      ResolveIngestStripes(options, supports_concurrent_ingest);
  manifest.publish_every_votes = options.publish_every_votes;
  manifest.wal_group_commit_votes = options.wal_group_commit_votes;
  manifest.wal_group_commit_ms = options.wal_group_commit_ms;
  manifest.checkpoint_every_votes = options.checkpoint_every_votes;
  manifest.failure_policy = options.durability_failure_policy;
  return SessionDurability::Create(MakeDurabilityOptions(name, options),
                                   manifest);
}

}  // namespace

DqmEngine::DqmEngine(const Options& options)
    : num_shards_(options.num_shards),
      shards_(std::make_unique<Shard[]>(options.num_shards)) {
  // invariant: Options defaults and callers guarantee a shard exists.
  DQM_CHECK_GT(num_shards_, 0u);
}

DqmEngine::Shard& DqmEngine::ShardFor(std::string_view name) const {
  return shards_[std::hash<std::string_view>{}(name) % num_shards_];
}

Status DqmEngine::PrecheckName(const std::string& name) const {
  // Cheap pre-check: don't pay the O(num_items) session (or pipeline)
  // construction just to discover a bad or duplicate name.
  if (name.empty()) {
    return Status::InvalidArgument("session name must be non-empty");
  }
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  if (shard.sessions.contains(name)) {
    return Status::AlreadyExists(
        StrFormat("session '%s' is already open", name.c_str()));
  }
  return Status::OK();
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::InsertSession(
    const std::string& name,
    const std::function<std::shared_ptr<EstimationSession>()>& make_session) {
  DQM_RETURN_NOT_OK(PrecheckName(name));
  Shard& shard = ShardFor(name);
  // Construct outside the shard lock; a racing open of the same name is
  // resolved by the emplace below (first writer wins).
  std::shared_ptr<EstimationSession> session = make_session();
  MutexLock lock(shard.mutex);
  auto [it, inserted] = shard.sessions.emplace(name, session);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("session '%s' is already open", name.c_str()));
  }
  return session;
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    const core::DataQualityMetric::Options& metric_options) {
  return InsertSession(name, [&] {
    return std::make_shared<EstimationSession>(name, num_items,
                                               metric_options);
  });
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    std::span<const std::string> specs) {
  return OpenSession(name, num_items, specs, SessionOptions());
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::OpenSession(
    const std::string& name, size_t num_items,
    std::span<const std::string> specs,
    const SessionOptions& session_options) {
  // Name first (cheap), then the specs: a bad or duplicate name never pays
  // the pipeline construction, and a typo'd spec never half-opens a
  // session.
  DQM_RETURN_NOT_OK(PrecheckName(name));
  // Serving retention default: sessions hold the compacted count matrix,
  // not the raw vote history (memory O(#pairs), not O(#votes)).
  DQM_ASSIGN_OR_RETURN(
      core::DataQualityMetric metric,
      core::DataQualityMetric::Create(num_items, specs,
                                      crowd::RetentionPolicy::kCounts));
  std::unique_ptr<SessionDurability> durability;
  if (!session_options.durability_dir.empty()) {
    // Directory + manifest + empty WAL exist before the session does, so
    // from the first accepted batch onward the write-ahead invariant holds.
    DQM_ASSIGN_OR_RETURN(
        durability,
        CreateSessionDurability(name, num_items, specs, session_options,
                                metric.SupportsConcurrentIngest()));
  }
  auto session = std::make_shared<EstimationSession>(
      name, std::move(metric), session_options, std::move(durability),
      std::vector<std::string>(specs.begin(), specs.end()));
  return InsertSession(name, [&] { return session; });
}

Result<std::vector<std::string>> DqmEngine::ListSessionDirs(
    const std::string& root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound(StrFormat(
        "durability root '%s' is not a directory", root.c_str()));
  }
  std::vector<std::string> dirs;
  for (const fs::directory_entry& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory()) dirs.push_back(entry.path().string());
  }
  if (ec) {
    return Status::IOError(StrFormat("scanning '%s': %s", root.c_str(),
                                     ec.message().c_str()));
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

Result<DqmEngine::RecoveredSession> DqmEngine::RecoverSessionDir(
    const std::string& dir, const std::string& root,
    SessionManifest manifest) {
  DQM_ASSIGN_OR_RETURN(SessionOptions options,
                       ParsePublishCadenceSpec(manifest.cadence));
  options.publish_every_votes = manifest.publish_every_votes;
  // 0 in the manifest means the serialized path was resolved at create
  // time; 1 pins it (0 in SessionOptions would re-run auto-resolution).
  options.ingest_stripes = manifest.ingest_stripes == 0
                               ? 1
                               : manifest.ingest_stripes;
  options.durability_dir = root;
  options.wal_group_commit_votes = manifest.wal_group_commit_votes;
  options.wal_group_commit_ms = manifest.wal_group_commit_ms;
  options.checkpoint_every_votes = manifest.checkpoint_every_votes;
  options.durability_failure_policy = manifest.failure_policy;
  DQM_RETURN_NOT_OK(PrecheckName(manifest.name));
  DQM_ASSIGN_OR_RETURN(
      core::DataQualityMetric metric,
      core::DataQualityMetric::Create(manifest.num_items, manifest.specs,
                                      crowd::RetentionPolicy::kCounts));
  DurabilityOptions durability_options =
      MakeDurabilityOptions(manifest.name, options);
  // Trust the directory actually scanned over the re-derived encoding, in
  // case the tree was relocated by hand.
  durability_options.dir = dir;
  DQM_ASSIGN_OR_RETURN(std::unique_ptr<SessionDurability> durability,
                       SessionDurability::Attach(durability_options));
  auto session = std::make_shared<EstimationSession>(
      manifest.name, std::move(metric), options, std::move(durability),
      manifest.specs);
  DQM_ASSIGN_OR_RETURN(EstimationSession::RecoveryReport report,
                       session->RecoverFromDurability());
  DQM_RETURN_NOT_OK(
      InsertSession(manifest.name, [&] { return session; }).status());
  RecoveredSession row;
  row.name = manifest.name;
  row.num_items = manifest.num_items;
  row.votes_restored = report.votes_restored;
  row.torn_records = report.torn_records;
  row.had_checkpoint = report.had_checkpoint;
  // A session can come up serving with its durability already compromised
  // (e.g. a fault sealed the WAL during the recovery-time flush under
  // degrade_to_volatile) — surface that per session instead of letting
  // "recovered" read as "crash-safe again".
  if (SessionDurability* durability_engine = session->durability_engine()) {
    row.degraded =
        durability_engine->degraded() || durability_engine->wal_sealed();
  }
  return row;
}

Result<std::vector<DqmEngine::RecoveredSession>> DqmEngine::RecoverSessions(
    const std::string& root) {
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> dirs, ListSessionDirs(root));
  std::vector<RecoveredSession> recovered;
  for (const std::string& dir : dirs) {
    Result<SessionManifest> manifest_or =
        ReadManifestFile(SessionManifestPath(dir));
    if (!manifest_or.ok()) {
      // No (readable) manifest means OpenSession crashed before the
      // rename-commit — by the write order there can be no WAL with
      // accepted votes in such a directory, so skipping loses nothing.
      DQM_LOG(Warning) << "RecoverSessions: skipping '" << dir
                       << "': " << manifest_or.status().message();
      continue;
    }
    DQM_ASSIGN_OR_RETURN(
        RecoveredSession row,
        RecoverSessionDir(dir, root, std::move(manifest_or).value()));
    recovered.push_back(std::move(row));
  }
  std::sort(recovered.begin(), recovered.end(),
            [](const RecoveredSession& a, const RecoveredSession& b) {
              return a.name < b.name;
            });
  return recovered;
}

Result<std::vector<DqmEngine::SessionRecoveryOutcome>>
DqmEngine::RecoverSessionsKeepGoing(const std::string& root) {
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> dirs, ListSessionDirs(root));
  std::vector<SessionRecoveryOutcome> outcomes;
  outcomes.reserve(dirs.size());
  for (const std::string& dir : dirs) {
    SessionRecoveryOutcome outcome;
    outcome.dir = dir;
    Result<SessionManifest> manifest_or =
        ReadManifestFile(SessionManifestPath(dir));
    if (!manifest_or.ok()) {
      outcome.state = SessionRecoveryOutcome::State::kSkipped;
      outcome.detail = manifest_or.status().message();
      outcomes.push_back(std::move(outcome));
      continue;
    }
    SessionManifest manifest = std::move(manifest_or).value();
    outcome.name = manifest.name;
    Result<RecoveredSession> row =
        RecoverSessionDir(dir, root, std::move(manifest));
    if (row.ok()) {
      outcome.state = SessionRecoveryOutcome::State::kRecovered;
      outcome.report = std::move(row).value();
    } else {
      outcome.state = SessionRecoveryOutcome::State::kFailed;
      outcome.detail = row.status().message();
      DQM_LOG(Warning) << "RecoverSessionsKeepGoing: '" << dir
                       << "' failed: " << outcome.detail;
    }
    outcomes.push_back(std::move(outcome));
  }
  return outcomes;
}

Result<std::shared_ptr<EstimationSession>> DqmEngine::GetSession(
    const std::string& name) const {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  auto it = shard.sessions.find(name);
  if (it == shard.sessions.end()) {
    return Status::NotFound(
        StrFormat("no open session named '%s'", name.c_str()));
  }
  return it->second;
}

Status DqmEngine::Ingest(const std::string& name,
                         std::span<const crowd::VoteEvent> votes) {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  // The shard lock is already released: vote application only contends on
  // this session's own mutex.
  return (*session)->AddVotes(votes);
}

Status DqmEngine::Publish(const std::string& name) {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  (*session)->Publish();
  return Status::OK();
}

Result<Snapshot> DqmEngine::Query(const std::string& name) const {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  return (*session)->snapshot();
}

Status DqmEngine::QueryInto(const std::string& name, Snapshot& out) const {
  Result<std::shared_ptr<EstimationSession>> session = GetSession(name);
  if (!session.ok()) return session.status();
  (*session)->SnapshotInto(out);
  return Status::OK();
}

std::vector<std::pair<std::string, Snapshot>> DqmEngine::QueryAll() const {
  // Collect handles shard by shard, then snapshot with no locks held: a
  // slow estimator read never extends any shard's critical section.
  std::vector<std::pair<std::string, std::shared_ptr<EstimationSession>>>
      sessions;
  for (size_t i = 0; i < num_shards_; ++i) {
    // Bind the shard once: the analysis ties shard.sessions to shard.mutex
    // through the one local, where an index expression would defeat it.
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [name, session] : shard.sessions) {
      sessions.emplace_back(name, session);
    }
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<std::string, Snapshot>> snapshots;
  snapshots.reserve(sessions.size());
  for (const auto& [name, session] : sessions) {
    snapshots.emplace_back(name, session->snapshot());
  }
  return snapshots;
}

Status DqmEngine::CloseSession(const std::string& name) {
  Shard& shard = ShardFor(name);
  MutexLock lock(shard.mutex);
  if (shard.sessions.erase(name) == 0) {
    return Status::NotFound(
        StrFormat("no open session named '%s'", name.c_str()));
  }
  return Status::OK();
}

Status DqmEngine::MigrateSession(const std::string& name, DqmEngine& target,
                                 const std::string& target_durability_root) {
  if (&target == this) {
    return Status::InvalidArgument(StrFormat(
        "cannot migrate session '%s' to its own engine", name.c_str()));
  }
  DQM_ASSIGN_OR_RETURN(std::shared_ptr<EstimationSession> session,
                       GetSession(name));
  if (session->specs().empty()) {
    return Status::FailedPrecondition(StrFormat(
        "session '%s' was opened without estimator specs; its panel cannot "
        "be rebuilt on the target engine", name.c_str()));
  }
  // Durable barrier first: after this, everything the export cut will see
  // is also on disk at the source, so a crash mid-migration loses nothing
  // (the source stays registered until the hand-off completes).
  DQM_RETURN_NOT_OK(session->FlushDurability());
  DQM_ASSIGN_OR_RETURN(crowd::CheckpointData state, session->ExportState());
  SessionOptions options = session->options();
  options.durability_dir = target_durability_root;
  DQM_ASSIGN_OR_RETURN(
      std::shared_ptr<EstimationSession> moved,
      target.OpenSession(name, session->num_items(), session->specs(),
                         options));
  // The synthetic replay rebuilds tallies and pair counts bit-identically
  // through the target's ordinary ingest path (and write-ahead logs them
  // when the target is durable).
  Status restored = crowd::EmitCheckpointVotes(
      state, [&moved](std::span<const crowd::VoteEvent> votes) {
        return moved->AddVotes(votes);
      });
  if (restored.ok() && moved->committed_votes() != state.num_events) {
    restored = Status::Internal(StrFormat(
        "migration of '%s' restored %llu votes but the source exported %llu",
        name.c_str(),
        static_cast<unsigned long long>(moved->committed_votes()),
        static_cast<unsigned long long>(state.num_events)));
  }
  if (!restored.ok()) {
    // Roll back the half-built target; the source keeps serving.
    Status closed = target.CloseSession(name);
    (void)closed;
    return restored;
  }
  moved->Publish();
  DQM_RETURN_NOT_OK(CloseSession(name));
  static telemetry::Counter* migrated =
      telemetry::MetricsRegistry::Global().GetCounter(
          telemetry::metric_names::kSessionsMigratedTotal);
  migrated->Increment();
  return Status::OK();
}

size_t DqmEngine::num_sessions() const {
  size_t count = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    count += shard.sessions.size();
  }
  return count;
}

void DqmEngine::RefreshTelemetry() const {
  // Handle collection mirrors QueryAll: shard by shard under the shard
  // locks. A session's name hashes to exactly one shard and each shard map
  // holds it at most once, so a live session contributes exactly one handle
  // no matter how much open/close churn races this walk.
  std::vector<std::shared_ptr<EstimationSession>> sessions;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [name, session] : shard.sessions) {
      sessions.push_back(session);
    }
  }
  size_t retained = 0;
  for (const auto& session : sessions) {
    retained += session->RetainedBytes();
  }
  static telemetry::Gauge* sessions_open =
      telemetry::MetricsRegistry::Global().GetGauge(
          telemetry::metric_names::kEngineSessionsOpen);
  static telemetry::Gauge* retained_bytes =
      telemetry::MetricsRegistry::Global().GetGauge(
          telemetry::metric_names::kEngineRetainedBytes);
  // Set, not Add: the gauges are a point-in-time roll-up, so sessions that
  // closed since the last refresh simply stop contributing — the
  // double-report hazard of accumulating per-session deltas cannot arise.
  sessions_open->Set(static_cast<double>(sessions.size()));
  retained_bytes->Set(static_cast<double>(retained));
}

std::vector<std::string> DqmEngine::SessionNames() const {
  std::vector<std::string> names;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mutex);
    for (const auto& [name, session] : shard.sessions) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace dqm::engine
