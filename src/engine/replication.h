#ifndef DQM_ENGINE_REPLICATION_H_
#define DQM_ENGINE_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "crowd/wal.h"
#include "engine/durability.h"
#include "engine/engine.h"
#include "engine/session.h"

namespace dqm::engine {

// ---------------------------------------------------------------------------
// Replicated hot-standby
//
// A primary's SessionDurability already defines an acknowledged durable
// prefix: every committed batch is in the WAL below durable_size before the
// commit returns, and checkpoints atomically fold that prefix into
// checkpoint.bin under the next WAL generation. Replication ships exactly
// those two artifact kinds to a standby:
//
//   primary                          transport                      standby
//   SessionDurability --ShipEvent--> SessionReplicator --Put--> artifacts
//                                                                  |
//                                      StandbyApplier::Poll <------+
//                                             |
//                                      warm EstimationSession
//
// The transport namespace is flat and per session:
//
//   MANIFEST                      the session manifest (serving config)
//   ckpt_<generation>.bin         checkpoint file bytes, verbatim
//   seg_<generation>_<seq>.bin    a crowd::WalSegment (wal.h): a slice of
//                                 the WAL body [start_offset, +payload)
//                                 with generation / 1-based sequence /
//                                 cumulative-vote / fencing metadata and a
//                                 whole-segment CRC
//   FENCE                         the current fencing token (decimal)
//
// Numbers in artifact names are zero-padded so lexicographic order equals
// numeric order. Segments within one generation are contiguous: segment
// seq+1 starts where segment seq ended. The applier refuses gaps, overlaps,
// CRC damage, and torn record frames (divergence — counted, never partially
// applied) and resynchronizes from the next shipped checkpoint.
//
// Fencing: every Put carries the shipper's fencing token and the transport
// rejects tokens below the current fence (FailedPrecondition, counted as
// dqm_replica_fence_rejections_total). StandbyApplier::Promote raises the
// fence past every token it has observed and persists the new token in the
// promoted session's manifest, so a zombie primary that wakes up after
// failover can no longer publish artifacts — its late pushes bounce off the
// fence instead of corrupting the promoted replica.
// ---------------------------------------------------------------------------

/// Artifact names, exported so tests and tools can address artifacts
/// directly (e.g. to corrupt a specific segment in a fault drill).
inline constexpr char kManifestArtifact[] = "MANIFEST";
std::string CheckpointArtifactName(uint64_t generation);
std::string SegmentArtifactName(uint64_t generation, uint64_t seq);

/// Parsed artifact identity; see ParseArtifactName.
struct ArtifactId {
  enum class Kind : uint8_t { kManifest, kCheckpoint, kSegment, kOther };
  Kind kind = Kind::kOther;
  uint64_t generation = 0;
  /// Segment sequence number (segments only).
  uint64_t seq = 0;
};
ArtifactId ParseArtifactName(std::string_view name);

/// Where shipped artifacts live. Implementations must make Put atomic
/// (readers never observe a torn artifact) and enforce the fence: a Put
/// whose token is below the current fence fails with FailedPrecondition.
/// RaiseFence is monotonic — an attempt to lower the fence is a no-op.
class ReplicationTransport {
 public:
  virtual ~ReplicationTransport() = default;

  virtual Status Put(const std::string& name, std::span<const uint8_t> bytes,
                     uint64_t fencing_token) = 0;
  /// Artifact names (FENCE excluded), sorted.
  virtual Result<std::vector<std::string>> List() = 0;
  virtual Result<std::vector<uint8_t>> Get(const std::string& name) = 0;
  virtual Status Delete(const std::string& name) = 0;
  virtual Status RaiseFence(uint64_t token) = 0;
  virtual Result<uint64_t> Fence() = 0;
};

/// Directory-backed transport: one artifact per file, published with the
/// same tmp + fsync + rename + dirsync dance the durability layer uses, all
/// through the failpoint-instrumented crowd::io wrappers (`dqm.repl.*`
/// failpoints). The fence lives in a FENCE file beside the artifacts.
///
/// This models shipping over a shared filesystem; a networked transport
/// would implement the same interface with the fence check done atomically
/// server-side. Here the check-fence-then-rename window is benign for the
/// intended topology (promote happens only after the primary is stopped or
/// declared dead).
class LocalDirTransport : public ReplicationTransport {
 public:
  /// Creates `dir` (and parents) if needed.
  static Result<std::unique_ptr<LocalDirTransport>> Open(
      const std::string& dir);

  Status Put(const std::string& name, std::span<const uint8_t> bytes,
             uint64_t fencing_token) override;
  Result<std::vector<std::string>> List() override;
  Result<std::vector<uint8_t>> Get(const std::string& name) override;
  Status Delete(const std::string& name) override;
  Status RaiseFence(uint64_t token) override;
  Result<uint64_t> Fence() override;

  const std::string& dir() const { return dir_; }

 private:
  explicit LocalDirTransport(std::string dir) : dir_(std::move(dir)) {}

  std::string dir_;
};

/// Point-in-time replicator counters (see stats()).
struct ReplicationStats {
  uint64_t segments_shipped = 0;
  uint64_t checkpoints_shipped = 0;
  uint64_t ship_errors = 0;
  /// Cumulative durable votes covered by shipped artifacts.
  uint64_t shipped_votes = 0;
  /// WAL generation the shipped artifacts belong to.
  uint64_t shipped_generation = 0;
};

/// Primary-side shipping pipeline for one durable session.
///
/// Start() performs an initial sync — manifest, current checkpoint (if
/// any), and the already-durable WAL tail as segment 1 — then installs a
/// SessionDurability ship hook. From then on every acknowledged fsync
/// ships the newly durable WAL bytes as the next segment *before* the
/// commit returns to the producer (no-lost-ack: an acknowledged vote is
/// either shipped or counted in dqm_replica_ship_errors_total and re-shipped
/// with the next segment), and every checkpoint ships the checkpoint file
/// and garbage-collects artifacts of older generations.
///
/// Ship failures NEVER fail the primary's commit: the primary's durability
/// is its own WAL; replication lag is surfaced through
/// dqm_replica_lag_bytes and the ship-error counter, and the pipeline
/// catches up automatically (a later segment simply covers a wider byte
/// range, and an unshipped checkpoint is re-shipped on the next event).
///
/// The hook runs under the session's WAL mutex (LockRank::kWal) and takes
/// only the replicator's own mutex (LockRank::kReplication) above it.
class SessionReplicator {
 public:
  /// The session must be durable (FailedPrecondition otherwise). The
  /// fencing token is read from the session's manifest.
  static Result<std::unique_ptr<SessionReplicator>> Start(
      std::shared_ptr<EstimationSession> session,
      std::shared_ptr<ReplicationTransport> transport);

  ~SessionReplicator();

  SessionReplicator(const SessionReplicator&) = delete;
  SessionReplicator& operator=(const SessionReplicator&) = delete;

  /// Uninstalls the ship hook. Idempotent; the destructor calls it.
  void Stop();

  ReplicationStats stats() const DQM_EXCLUDES(mutex_);
  uint64_t fencing_token() const { return fencing_token_; }
  const std::string& session_name() const { return session_->name(); }

 private:
  SessionReplicator(std::shared_ptr<EstimationSession> session,
                    std::shared_ptr<ReplicationTransport> transport,
                    uint64_t fencing_token);

  /// Ship-hook body. Failures are absorbed into ship_errors.
  void OnShipEvent(const SessionDurability::ShipEvent& event)
      DQM_EXCLUDES(mutex_);

  /// (Re)ships the current checkpoint file and rebases the segment cursor
  /// onto its generation. No-op when already on `generation`.
  Status ShipCheckpointLocked(uint64_t generation)
      DQM_REQUIRES(mutex_);

  /// Ships WAL bytes [shipped_offset_, durable_size) as the next segment.
  Status ShipSegmentLocked(uint64_t generation, uint64_t durable_size)
      DQM_REQUIRES(mutex_);

  /// Best-effort removal of artifacts older than shipped_generation_.
  void GarbageCollectLocked() DQM_REQUIRES(mutex_);

  const std::shared_ptr<EstimationSession> session_;
  const std::shared_ptr<ReplicationTransport> transport_;
  const uint64_t fencing_token_;
  SessionDurability* const durability_;

  mutable Mutex mutex_{LockRank::kReplication, "session-replicator"};
  /// Read-only fd on the primary's wal.log (segments are read back from
  /// the file, not captured in memory — the durable prefix is stable below
  /// durable_size while the WAL mutex is held).
  int wal_fd_ DQM_GUARDED_BY(mutex_) = -1;
  uint64_t shipped_generation_ DQM_GUARDED_BY(mutex_) = 0;
  /// Next unshipped byte of the current generation's WAL.
  uint64_t shipped_offset_ DQM_GUARDED_BY(mutex_) = 0;
  uint64_t next_seq_ DQM_GUARDED_BY(mutex_) = 1;
  uint64_t shipped_votes_ DQM_GUARDED_BY(mutex_) = 0;
  ReplicationStats stats_ DQM_GUARDED_BY(mutex_);
  std::vector<crowd::VoteEvent> scan_scratch_ DQM_GUARDED_BY(mutex_);
  bool stopped_ = false;
};

/// Standby-side applier: materializes the shipped artifact stream into a
/// warm EstimationSession registered on `engine`, ready to serve the moment
/// Promote() is called.
///
/// Poll() is the replay heartbeat — call it from a timer or loop. Each call
/// lists the transport, loads a newer checkpoint if one appeared (this is
/// also how divergence heals), then applies pending segments in sequence
/// order through the ordinary ingest path. Applied votes are
/// crash-consistent with the primary's acknowledged durable prefix:
/// a segment is fully validated (CRC, contiguity, clean record scan)
/// before a single vote of it is applied.
///
/// Single-threaded by contract: Poll/Promote must not be called
/// concurrently (drive it from one replay thread).
class StandbyApplier {
 public:
  struct Options {
    /// Durability root for the standby session ("" = the standby session
    /// is in-memory; promote still serves, it is just not yet durable).
    /// When set, the applier wipes and rebuilds the session's subdirectory
    /// on open and on every resync — standby state is entirely derived
    /// from the transport.
    std::string durability_dir;
  };

  /// Fetches the manifest artifact, rebuilds the primary's serving
  /// configuration (specs, cadence, stripe pinning), and opens the warm
  /// session under the primary's name. Fails if no manifest was shipped
  /// yet or the name is already taken on `engine`.
  static Result<std::unique_ptr<StandbyApplier>> Open(
      DqmEngine& engine, std::shared_ptr<ReplicationTransport> transport,
      const Options& options = Options());

  ~StandbyApplier();

  StandbyApplier(const StandbyApplier&) = delete;
  StandbyApplier& operator=(const StandbyApplier&) = delete;

  /// Applies everything currently shipped. Divergence (gap, overlap, CRC or
  /// metadata mismatch, torn frame) is not an error: it is counted, the
  /// offending segment is left unapplied, and the applier waits for a
  /// fresh checkpoint to resync from. FailedPrecondition after Promote().
  Status Poll();

  struct PromotionReport {
    /// The fence the promoted session now owns (> every token observed).
    uint64_t fencing_token = 0;
    uint64_t applied_votes = 0;
    uint64_t generation = 0;
  };

  /// Final drain + fence raise + manifest fencing-token persist (durable
  /// standbys). After Promote the session serves as a normal primary and
  /// this applier refuses further Poll() calls.
  Result<PromotionReport> Promote();

  const std::string& session_name() const { return manifest_.name; }
  std::shared_ptr<EstimationSession> session() const { return session_; }
  uint64_t applied_votes() const { return applied_votes_; }
  uint64_t applied_generation() const { return applied_generation_; }
  bool divergent() const { return divergent_; }
  bool promoted() const { return promoted_; }
  uint64_t divergences() const { return divergences_; }
  uint64_t resyncs() const { return resyncs_; }

 private:
  StandbyApplier(DqmEngine& engine,
                 std::shared_ptr<ReplicationTransport> transport,
                 Options options, SessionManifest manifest);

  /// Builds the SessionOptions a recovered/standby session runs with
  /// (mirrors DqmEngine recovery: manifest stripes are pinned, 0 -> 1).
  SessionOptions BuildSessionOptions() const;

  /// Closes + reopens the warm session from checkpoint artifact bytes
  /// (empty `ckpt` = from scratch at generation `generation`).
  Status ResyncFromCheckpoint(uint64_t generation,
                              std::span<const uint8_t> ckpt);

  /// Validates and applies one decoded segment; flags divergence and
  /// returns without applying anything on any mismatch.
  Status ApplySegment(const crowd::WalSegment& segment);

  void NoteDivergence(const std::string& why);

  DqmEngine& engine_;
  const std::shared_ptr<ReplicationTransport> transport_;
  const Options options_;
  SessionManifest manifest_;
  std::shared_ptr<EstimationSession> session_;

  bool opened_ = false;
  bool promoted_ = false;
  bool divergent_ = false;
  uint64_t applied_generation_ = 0;
  uint64_t next_seq_ = 1;
  /// WAL byte offset the next segment must start at.
  uint64_t expected_offset_ = 0;
  uint64_t applied_votes_ = 0;
  uint64_t divergences_ = 0;
  uint64_t resyncs_ = 0;
  /// Highest fencing token observed in shipped segments.
  uint64_t max_token_seen_ = 0;
  /// Highest cumulative vote count observed in decoded artifacts — the
  /// basis for the lag gauge.
  uint64_t max_cum_votes_seen_ = 0;

  std::vector<crowd::VoteEvent> scan_scratch_;
};

}  // namespace dqm::engine

#endif  // DQM_ENGINE_REPLICATION_H_
