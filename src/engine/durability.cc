#include "engine/durability.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "crowd/io.h"
#include "telemetry/metric_names.h"

namespace dqm::engine {

namespace {

namespace io = ::dqm::crowd::io;

constexpr char kManifestFile[] = "MANIFEST";
constexpr char kWalFile[] = "wal.log";
constexpr char kCheckpointFile[] = "checkpoint.bin";

Status ErrnoError(const char* op, const std::string& path) {
  return Status::IOError(
      StrFormat("%s '%s': %s", op, path.c_str(), std::strerror(errno)));
}

// Every write/fsync/rename/read edge in this file goes through the
// failpoint-instrumented, retrying wrappers in crowd/io.h (enforced by the
// raw-syscall lint rule); only stat and close stay raw.

Status FsyncPath(const std::string& path, bool directory) {
  int flags = O_RDONLY | O_CLOEXEC | (directory ? O_DIRECTORY : 0);
  DQM_ASSIGN_OR_RETURN(int fd, io::Open(fpn::kDirSync, path, flags));
  Status status = io::Fsync(fpn::kDirSync, fd, path);
  ::close(fd);
  return status;
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Atomic small-file write: tmp + fsync + rename + fsync parent.
Status WriteFileAtomic(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  DQM_ASSIGN_OR_RETURN(
      int fd, io::Open(fpn::kManifestOpen, tmp,
                       O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  Status status = io::WriteAll(
      fpn::kManifestWrite, fd,
      reinterpret_cast<const uint8_t*>(content.data()), content.size(), tmp);
  if (status.ok()) status = io::Fsync(fpn::kManifestFsync, fd, tmp);
  ::close(fd);
  if (!status.ok()) return status;
  DQM_RETURN_NOT_OK(io::Rename(fpn::kManifestRename, tmp, path));
  return FsyncPath(ParentDir(path), /*directory=*/true);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0 && errno == ENOENT) {
    // Keep the strerror text: recovery outcome tables surface this message
    // verbatim, and "No such file or directory" names the failure class for
    // an operator the way a bare path does not.
    return Status::NotFound(StrFormat("no such file: '%s': %s", path.c_str(),
                                      std::strerror(ENOENT)));
  }
  DQM_ASSIGN_OR_RETURN(
      int fd, io::Open(fpn::kManifestOpen, path, O_RDONLY | O_CLOEXEC));
  if (::fstat(fd, &st) != 0) {
    Status status = ErrnoError("stat", path);
    ::close(fd);
    return status;
  }
  std::string content(static_cast<size_t>(st.st_size), '\0');
  Status read =
      content.empty()
          ? Status::OK()
          : io::ReadExactAt(fpn::kManifestRead, fd,
                            reinterpret_cast<uint8_t*>(content.data()),
                            content.size(), 0, path);
  ::close(fd);
  if (!read.ok()) return read;
  return content;
}

Result<uint64_t> ParseU64(std::string_view text, const char* key) {
  uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument(
        StrFormat("manifest key %s: '%.*s' is not an unsigned integer", key,
                  static_cast<int>(text.size()), text.data()));
  }
  return value;
}

/// Durability-wide metrics, resolved once (the function-local-static
/// pattern every hot path in the repo uses).
struct DurabilityMetrics {
  telemetry::Counter* appends;
  telemetry::Counter* votes;
  telemetry::Counter* bytes;
  telemetry::Counter* fsyncs;
  telemetry::Counter* replayed;
  telemetry::Counter* torn;
  telemetry::Counter* seals;
  telemetry::Counter* dropped;
  telemetry::Counter* checkpoints;
  telemetry::Counter* degraded_votes;
  telemetry::Counter* degraded_rearms;
  telemetry::Gauge* sessions_degraded;
  telemetry::Histogram* fsync_ns;
  telemetry::Histogram* checkpoint_ns;

  DurabilityMetrics() {
    namespace names = telemetry::metric_names;
    auto& registry = telemetry::MetricsRegistry::Global();
    appends = registry.GetCounter(names::kWalAppendsTotal);
    votes = registry.GetCounter(names::kWalVotesTotal);
    bytes = registry.GetCounter(names::kWalBytesWrittenTotal);
    fsyncs = registry.GetCounter(names::kWalFsyncsTotal);
    replayed = registry.GetCounter(names::kWalReplayedVotesTotal);
    torn = registry.GetCounter(names::kWalTornRecordsTotal);
    seals = registry.GetCounter(names::kWalSealsTotal);
    dropped = registry.GetCounter(names::kWalDroppedVotesTotal);
    checkpoints = registry.GetCounter(names::kCheckpointsTotal);
    degraded_votes = registry.GetCounter(names::kDegradedVotesTotal);
    degraded_rearms = registry.GetCounter(names::kDegradedRearmsTotal);
    sessions_degraded = registry.GetGauge(names::kSessionsDegraded);
    fsync_ns = registry.GetHistogram(names::kWalFsyncNs);
    checkpoint_ns = registry.GetHistogram(names::kCheckpointWriteNs);
  }
};

DurabilityMetrics& Metrics() {
  static DurabilityMetrics* metrics = new DurabilityMetrics();
  return *metrics;
}

bool IsUnreservedChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
         c == '~';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const char* DurabilityFailurePolicyName(DurabilityFailurePolicy policy) {
  switch (policy) {
    case DurabilityFailurePolicy::kFailStop:
      return "fail_stop";
    case DurabilityFailurePolicy::kDegradeToVolatile:
      return "degrade_to_volatile";
  }
  return "fail_stop";
}

Result<DurabilityFailurePolicy> ParseDurabilityFailurePolicy(
    std::string_view text) {
  if (text == "fail_stop") return DurabilityFailurePolicy::kFailStop;
  if (text == "degrade_to_volatile") {
    return DurabilityFailurePolicy::kDegradeToVolatile;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown durability failure policy '%.*s' (want fail_stop or "
      "degrade_to_volatile)",
      static_cast<int>(text.size()), text.data()));
}

std::string PercentEncode(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (IsUnreservedChar(c)) {
      out.push_back(c);
    } else {
      unsigned char b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xF]);
    }
  }
  return out;
}

Result<std::string> PercentDecode(std::string_view encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    char c = encoded[i];
    if (c != '%') {
      out.push_back(c);
      continue;
    }
    if (i + 2 >= encoded.size()) {
      return Status::InvalidArgument(StrFormat(
          "truncated percent escape in '%.*s'",
          static_cast<int>(encoded.size()), encoded.data()));
    }
    int hi = HexValue(encoded[i + 1]);
    int lo = HexValue(encoded[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument(StrFormat(
          "bad percent escape in '%.*s'", static_cast<int>(encoded.size()),
          encoded.data()));
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::string ManifestContent(const SessionManifest& m) {
  std::vector<std::string> encoded_specs;
  encoded_specs.reserve(m.specs.size());
  for (const std::string& spec : m.specs) {
    encoded_specs.push_back(PercentEncode(spec));
  }
  std::string content = StrFormat(
      "name=%s\n"
      "num_items=%llu\n"
      "specs=%s\n"
      "cadence=%s\n"
      "ingest_stripes=%llu\n"
      "publish_every_votes=%llu\n"
      "wal_group_commit_votes=%llu\n"
      "wal_group_commit_ms=%llu\n"
      "checkpoint_every_votes=%llu\n"
      "durability_failure_policy=%s\n"
      "fencing_token=%llu\n",
      PercentEncode(m.name).c_str(),
      static_cast<unsigned long long>(m.num_items),
      Join(encoded_specs, ",").c_str(), m.cadence.c_str(),
      static_cast<unsigned long long>(m.ingest_stripes),
      static_cast<unsigned long long>(m.publish_every_votes),
      static_cast<unsigned long long>(m.wal_group_commit_votes),
      static_cast<unsigned long long>(m.wal_group_commit_ms),
      static_cast<unsigned long long>(m.checkpoint_every_votes),
      DurabilityFailurePolicyName(m.failure_policy),
      static_cast<unsigned long long>(m.fencing_token));
  return content;
}

Status WriteManifestFile(const std::string& path, const SessionManifest& m) {
  return WriteFileAtomic(path, ManifestContent(m));
}

Result<SessionManifest> ParseManifestContent(std::string_view content,
                                             const std::string& context) {
  SessionManifest m;
  bool saw_name = false;
  bool saw_items = false;
  for (std::string_view line : Split(content, '\n')) {
    if (line.empty()) continue;
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument(StrFormat(
          "%s: malformed manifest line '%.*s'", context.c_str(),
          static_cast<int>(line.size()), line.data()));
    }
    std::string_view key = line.substr(0, eq);
    std::string_view value = line.substr(eq + 1);
    if (key == "name") {
      DQM_ASSIGN_OR_RETURN(m.name, PercentDecode(value));
      saw_name = true;
    } else if (key == "num_items") {
      DQM_ASSIGN_OR_RETURN(m.num_items, ParseU64(value, "num_items"));
      saw_items = true;
    } else if (key == "specs") {
      m.specs.clear();
      if (!value.empty()) {
        for (std::string_view spec : Split(value, ',')) {
          DQM_ASSIGN_OR_RETURN(std::string decoded, PercentDecode(spec));
          m.specs.push_back(std::move(decoded));
        }
      }
    } else if (key == "cadence") {
      m.cadence = std::string(value);
    } else if (key == "ingest_stripes") {
      DQM_ASSIGN_OR_RETURN(m.ingest_stripes,
                           ParseU64(value, "ingest_stripes"));
    } else if (key == "publish_every_votes") {
      DQM_ASSIGN_OR_RETURN(m.publish_every_votes,
                           ParseU64(value, "publish_every_votes"));
    } else if (key == "wal_group_commit_votes") {
      DQM_ASSIGN_OR_RETURN(m.wal_group_commit_votes,
                           ParseU64(value, "wal_group_commit_votes"));
    } else if (key == "wal_group_commit_ms") {
      DQM_ASSIGN_OR_RETURN(m.wal_group_commit_ms,
                           ParseU64(value, "wal_group_commit_ms"));
    } else if (key == "checkpoint_every_votes") {
      DQM_ASSIGN_OR_RETURN(m.checkpoint_every_votes,
                           ParseU64(value, "checkpoint_every_votes"));
    } else if (key == "durability_failure_policy") {
      DQM_ASSIGN_OR_RETURN(m.failure_policy,
                           ParseDurabilityFailurePolicy(value));
    } else if (key == "fencing_token") {
      DQM_ASSIGN_OR_RETURN(m.fencing_token, ParseU64(value, "fencing_token"));
    }
    // Unknown keys are skipped: a manifest written by a newer build stays
    // recoverable by this one.
  }
  if (!saw_name || !saw_items) {
    return Status::InvalidArgument(StrFormat(
        "%s: manifest is missing required keys (name, num_items)",
        context.c_str()));
  }
  return m;
}

Result<SessionManifest> ReadManifestFile(const std::string& path) {
  DQM_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path));
  return ParseManifestContent(content, path);
}

std::string SessionManifestPath(const std::string& session_dir) {
  return session_dir + "/" + kManifestFile;
}

// --- SessionDurability -----------------------------------------------------

SessionDurability::SessionDurability(DurabilityOptions options)
    : options_([&options] {
        options.group_commit_votes =
            std::max<uint64_t>(options.group_commit_votes, 1);
        return std::move(options);
      }()) {}

std::string SessionDurability::wal_path() const {
  return options_.dir + "/" + kWalFile;
}

std::string SessionDurability::checkpoint_path() const {
  return options_.dir + "/" + kCheckpointFile;
}

Result<std::unique_ptr<SessionDurability>> SessionDurability::Create(
    const DurabilityOptions& options, const SessionManifest& manifest) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::exists(options.dir, ec)) {
    if (!fs::is_empty(options.dir, ec)) {
      return Status::FailedPrecondition(StrFormat(
          "durability dir '%s' already holds session state; recover it via "
          "RecoverSessions instead of opening fresh",
          options.dir.c_str()));
    }
  } else {
    // Record the directories create_directories is about to make (deepest
    // first) so each new dirent can be fsynced into its parent below —
    // otherwise the session directory itself can vanish at power loss even
    // though every vote record inside it was fsync'd.
    std::vector<std::string> created;
    for (fs::path p(options.dir); !p.empty() && !fs::exists(p, ec);
         p = p.parent_path()) {
      created.push_back(p.string());
    }
    fs::create_directories(options.dir, ec);
    if (ec) {
      return Status::IOError(StrFormat("mkdir '%s': %s", options.dir.c_str(),
                                       ec.message().c_str()));
    }
    for (auto it = created.rbegin(); it != created.rend(); ++it) {
      DQM_RETURN_NOT_OK(FsyncPath(ParentDir(*it), /*directory=*/true));
    }
  }
  std::unique_ptr<SessionDurability> durability(
      new SessionDurability(options));
  // Manifest before WAL: a directory with a manifest is recoverable; one
  // without (a crash inside Create) is skipped by RecoverSessions with a
  // warning instead of surfacing a half-created session.
  DQM_RETURN_NOT_OK(WriteManifestFile(
      durability->options_.dir + "/" + kManifestFile, manifest));
  DQM_RETURN_NOT_OK(durability->OpenWal());
  // wal.log was just created; the manifest's atomic write synced the
  // session directory BEFORE it existed, so its dirent needs its own fsync
  // to survive power loss.
  DQM_RETURN_NOT_OK(
      FsyncPath(durability->options_.dir, /*directory=*/true));
  durability->checkpoint_bytes_gauge_ =
      telemetry::MetricsRegistry::Global().AcquireGauge(
          telemetry::metric_names::kCheckpointBytes,
          {{"session", durability->options_.session_name}});
  durability->StartFlusher();
  return durability;
}

Result<std::unique_ptr<SessionDurability>> SessionDurability::Attach(
    const DurabilityOptions& options) {
  std::unique_ptr<SessionDurability> durability(
      new SessionDurability(options));
  struct stat st;
  const std::string manifest_path =
      durability->options_.dir + "/" + kManifestFile;
  if (::stat(manifest_path.c_str(), &st) != 0) {
    return Status::NotFound(StrFormat(
        "'%s' is not a session durability dir (no %s)",
        durability->options_.dir.c_str(), kManifestFile));
  }
  DQM_RETURN_NOT_OK(durability->OpenWal());
  // OpenWal recreates wal.log if it was missing (a crash between the
  // manifest commit and the WAL's creation); persist that dirent too.
  DQM_RETURN_NOT_OK(
      FsyncPath(durability->options_.dir, /*directory=*/true));
  durability->checkpoint_bytes_gauge_ =
      telemetry::MetricsRegistry::Global().AcquireGauge(
          telemetry::metric_names::kCheckpointBytes,
          {{"session", durability->options_.session_name}});
  durability->StartFlusher();
  return durability;
}

SessionDurability::~SessionDurability() {
  if (flusher_.joinable()) {
    {
      MutexLock lock(wal_mutex_);
      stop_flusher_ = true;
    }
    flusher_cv_.NotifyAll();
    flusher_.join();
  }
  {
    MutexLock lock(wal_mutex_);
    if (wal_.is_open() &&
        (wal_.buffered_bytes() > 0 || pending_votes_ > 0)) {
      Status status = FlushLocked(/*sync=*/true);
      if (!status.ok()) {
        DQM_LOG(Error) << "WAL close flush failed: " << status.message();
      }
    }
  }
  if (degraded_.load(std::memory_order_relaxed)) {
    // The gauge counts LIVE degraded sessions; this one is going away.
    Metrics().sessions_degraded->Add(-1.0);
  }
  if (checkpoint_bytes_gauge_ != nullptr) {
    telemetry::MetricsRegistry::Global().ReleaseGauge(
        telemetry::metric_names::kCheckpointBytes,
        {{"session", options_.session_name}});
  }
}

Status SessionDurability::OpenWal() {
  DQM_ASSIGN_OR_RETURN(crowd::VoteWal wal, crowd::VoteWal::Open(wal_path()));
  MutexLock lock(wal_mutex_);
  wal_ = std::move(wal);
  return Status::OK();
}

void SessionDurability::StartFlusher() {
  if (options_.group_commit_ms == 0) return;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void SessionDurability::FlusherLoop() {
  MutexLock lock(wal_mutex_);
  while (!stop_flusher_) {
    flusher_cv_.WaitFor(wal_mutex_,
                        std::chrono::milliseconds(options_.group_commit_ms));
    if (stop_flusher_) break;
    // The flusher's own kill/skip point: error and return actions drop
    // this wake (the next one retries); delay stalls the flusher with the
    // WAL lock held, modeling a slow device backing up the appenders.
    if (auto injected = failpoint::Eval(fpn::kFlusherWake);
        injected.op != failpoint::EvalResult::Op::kNone) {
      continue;
    }
    if (pending_votes_ > 0 || wal_.buffered_bytes() > 0) {
      Status status = FlushLocked(/*sync=*/true);
      if (!status.ok()) {
        DQM_LOG(Error) << "timed WAL flush for '" << wal_.path()
                       << "' failed: " << status.message();
      }
    }
  }
}

void SessionDurability::RunHook(Phase phase) {
  if (phase_hook_) phase_hook_(phase);
}

void SessionDurability::SetPhaseHookForTest(std::function<void(Phase)> hook) {
  MutexLock lock(wal_mutex_);
  phase_hook_ = std::move(hook);
}

void SessionDurability::SetShipHook(
    std::function<void(const ShipEvent&)> hook) {
  MutexLock lock(wal_mutex_);
  ship_hook_ = std::move(hook);
}

Status SessionDurability::FlushLocked(bool sync) {
  DurabilityMetrics& tm = Metrics();
  const uint64_t before = wal_.bytes_written();
  const bool was_sealed = wal_.sealed();
  Status status;
  if (sync) {
    const bool timed = telemetry::Enabled();
    const uint64_t start = timed ? telemetry::NowNanos() : 0;
    status = wal_.Sync();
    if (timed) tm.fsync_ns->Record(telemetry::NowNanos() - start);
    tm.fsyncs->Increment();
  } else {
    status = wal_.WriteBuffered();
  }
  tm.bytes->Add(wal_.bytes_written() - before);
  if (status.ok() && sync) {
    pending_votes_ = 0;
    RunHook(Phase::kFsync);
    if (ship_hook_) {
      // Fired before the commit is acknowledged to the caller (we are still
      // inside its AppendBatch/Flush), so a crash inside the ship path can
      // only lose votes that were never acked — the no-lost-ack guarantee
      // the failover drill asserts.
      ShipEvent event;
      event.kind = ShipEvent::Kind::kWalDurable;
      event.generation = wal_.generation();
      event.durable_size = wal_.durable_size();
      ship_hook_(event);
    }
  }
  if (!status.ok() && !was_sealed) {
    // The failure sealed the WAL and dropped everything unsynced: those
    // votes exist only in the in-memory session until the next checkpoint
    // re-snapshots them. Zero the group-commit gauge so it tracks the (now
    // empty) backlog instead of forcing a doomed sync per batch, and count
    // the loss where an operator can see it.
    tm.seals->Increment();
    tm.dropped->Add(pending_votes_);
    if (options_.failure_policy ==
        DurabilityFailurePolicy::kDegradeToVolatile) {
      // Everything unsynced was acknowledged to callers; under degradation
      // those votes stay committed in memory, so account them as acked-
      // without-durability before the gauge is zeroed.
      EnterDegradedLocked(status);
      degraded_votes_.fetch_add(pending_votes_, std::memory_order_acq_rel);
      tm.degraded_votes->Add(pending_votes_);
    }
    pending_votes_ = 0;
  }
  return status;
}

void SessionDurability::EnterDegradedLocked(const Status& cause) {
  if (degraded_.load(std::memory_order_relaxed)) return;
  degraded_.store(true, std::memory_order_release);
  Metrics().sessions_degraded->Add(1.0);
  DQM_LOG(Warning) << "session '" << options_.session_name
                   << "': durability DEGRADED to volatile mode ("
                   << cause.message()
                   << "); commits continue in memory only until a "
                      "checkpoint re-arms the WAL";
}

Status SessionDurability::AppendBatch(
    std::span<const crowd::VoteEvent> votes) {
  if (votes.empty()) return Status::OK();
  DurabilityMetrics& tm = Metrics();
  MutexLock lock(wal_mutex_);
  if (wal_.sealed()) {
    if (options_.failure_policy ==
        DurabilityFailurePolicy::kDegradeToVolatile) {
      // Volatile mode: the batch is accepted into memory with no durable
      // record. EnterDegradedLocked is idempotent but normally a no-op
      // here (the seal that got us here already flipped the flag).
      EnterDegradedLocked(wal_.SealedStatus());
      degraded_votes_.fetch_add(votes.size(), std::memory_order_acq_rel);
      tm.degraded_votes->Add(votes.size());
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      RunHook(Phase::kAppend);
      return Status::OK();
    }
    // A sealed WAL cannot take new records without breaking the on-disk
    // superset invariant (they would sit past the failure point). Reject
    // until a checkpoint commit resets the log.
    return wal_.SealedStatus();
  }
  wal_.Append(votes);
  pending_votes_ += votes.size();
  tm.appends->Increment();
  tm.votes->Add(votes.size());
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  RunHook(Phase::kAppend);
  if (pending_votes_ >= options_.group_commit_votes) {
    Status status = FlushLocked(/*sync=*/true);
    if (!status.ok()) {
      if (options_.failure_policy ==
          DurabilityFailurePolicy::kDegradeToVolatile) {
        // FlushLocked just accounted this batch (it was part of the
        // unsynced backlog) and flipped the session degraded; the caller
        // applies it in memory, so the in-flight marker stands.
        return Status::OK();
      }
      // The record never reached the file (the WAL dropped its buffer), so
      // the caller must reject the batch: un-count the in-flight marker it
      // will never apply.
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      return status;
    }
  }
  return Status::OK();
}

void SessionDurability::NoteApplied() {
  in_flight_.fetch_sub(1, std::memory_order_release);
}

Status SessionDurability::Flush() {
  MutexLock lock(wal_mutex_);
  if (wal_.sealed()) {
    // Degraded sessions are volatile BY POLICY: a flush has nothing to do
    // and callers (close paths, CLI) should not error on it. The degraded
    // flag and dropped-vote count are the honest signal.
    if (options_.failure_policy ==
        DurabilityFailurePolicy::kDegradeToVolatile) {
      return Status::OK();
    }
    // A sealed WAL has nothing buffered, but reporting OK would claim a
    // durability point that does not exist — the session holds applied
    // votes the log dropped.
    return wal_.SealedStatus();
  }
  if (wal_.buffered_bytes() == 0 && pending_votes_ == 0) return Status::OK();
  return FlushLocked(/*sync=*/true);
}

Status SessionDurability::CommitCheckpoint(
    const std::function<Result<crowd::CheckpointData>(uint64_t generation)>&
        build) {
  DurabilityMetrics& tm = Metrics();
  const bool timed = telemetry::Enabled();
  const uint64_t start = timed ? telemetry::NowNanos() : 0;
  MutexLock lock(wal_mutex_);
  // Quiesce: new appends are blocked by the WAL mutex; batches already
  // appended (their records die with the Reset below) must finish applying
  // before the snapshot is cut, or their votes would exist nowhere after a
  // crash. Appliers don't need this mutex to finish, so the spin is
  // deadlock-free.
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  const uint64_t next_generation = wal_.generation() + 1;
  Result<crowd::CheckpointData> data = build(next_generation);
  if (!data.ok()) return data.status();
  DQM_RETURN_NOT_OK(crowd::WriteCheckpointFile(checkpoint_path(), *data));
  tm.checkpoints->Increment();
  if (checkpoint_bytes_gauge_ != nullptr) {
    struct stat st;
    if (::stat(checkpoint_path().c_str(), &st) == 0) {
      checkpoint_bytes_gauge_->Set(static_cast<double>(st.st_size));
    }
  }
  RunHook(Phase::kCheckpointWrite);
  // A crash here leaves checkpoint generation G+1 next to a WAL at G —
  // Recover detects exactly that and discards the (now superseded) WAL.
  DQM_RETURN_NOT_OK(wal_.Reset(next_generation));
  pending_votes_ = 0;
  if (degraded_.load(std::memory_order_relaxed)) {
    // The checkpoint that just committed snapshots every vote accepted
    // while degraded, and Reset unsealed the WAL: durability is re-armed.
    // dropped_durability_votes() stays as the audit trail.
    degraded_.store(false, std::memory_order_release);
    tm.sessions_degraded->Add(-1.0);
    tm.degraded_rearms->Increment();
    DQM_LOG(Info) << "session '" << options_.session_name
                  << "': durability re-armed by checkpoint (generation "
                  << next_generation << ") after "
                  << degraded_votes_.load(std::memory_order_relaxed)
                  << " votes were acknowledged without durability";
  }
  RunHook(Phase::kWalReset);
  if (ship_hook_) {
    ShipEvent event;
    event.kind = ShipEvent::Kind::kCheckpoint;
    event.generation = next_generation;
    event.durable_size = wal_.durable_size();
    event.checkpoint_votes = data->num_events;
    ship_hook_(event);
  }
  if (timed) tm.checkpoint_ns->Record(telemetry::NowNanos() - start);
  return Status::OK();
}

Result<SessionDurability::RecoveryStats> SessionDurability::Recover(
    size_t num_items,
    const std::function<Status(std::span<const crowd::VoteEvent>)>& restore) {
  DurabilityMetrics& tm = Metrics();
  MutexLock lock(wal_mutex_);
  RecoveryStats stats;
  uint64_t checkpoint_generation = 0;
  const std::string cp = checkpoint_path();
  struct stat st;
  if (::stat(cp.c_str(), &st) == 0) {
    DQM_ASSIGN_OR_RETURN(crowd::CheckpointData data,
                         crowd::ReadCheckpointFile(cp));
    if (data.num_items != num_items) {
      return Status::Internal(StrFormat(
          "checkpoint '%s' snapshots %llu items but the session has %zu",
          cp.c_str(), static_cast<unsigned long long>(data.num_items),
          num_items));
    }
    DQM_RETURN_NOT_OK(crowd::EmitCheckpointVotes(data, restore));
    stats.had_checkpoint = true;
    stats.checkpoint_votes = data.num_events;
    checkpoint_generation = data.wal_generation;
    if (checkpoint_bytes_gauge_ != nullptr) {
      checkpoint_bytes_gauge_->Set(static_cast<double>(st.st_size));
    }
  }
  const uint64_t wal_generation = wal_.generation();
  bool replay_tail = true;
  if (checkpoint_generation == 0) {
    if (wal_generation != 1) {
      // A WAL only moves past generation 1 via a checkpoint commit, whose
      // snapshot file was rename-committed *first* — its absence means the
      // directory lost a durable file, which recovery must not paper over.
      return Status::Internal(StrFormat(
          "WAL '%s' is at generation %llu but no checkpoint exists",
          wal_.path().c_str(),
          static_cast<unsigned long long>(wal_generation)));
    }
  } else if (wal_generation == checkpoint_generation) {
    // Normal shape: the WAL is the tail that post-dates the snapshot.
  } else if (wal_generation < checkpoint_generation) {
    // Crash between the checkpoint rename and the WAL reset: every record
    // in this WAL is already inside the snapshot. Complete the interrupted
    // commit by discarding them now.
    DQM_LOG(Warning) << "WAL '" << wal_.path() << "' (generation "
                     << wal_generation
                     << ") predates its checkpoint (generation "
                     << checkpoint_generation
                     << "); completing the interrupted checkpoint commit";
    DQM_RETURN_NOT_OK(wal_.Reset(checkpoint_generation));
    replay_tail = false;
  } else {
    return Status::Internal(StrFormat(
        "WAL '%s' generation %llu is ahead of checkpoint generation %llu",
        wal_.path().c_str(), static_cast<unsigned long long>(wal_generation),
        static_cast<unsigned long long>(checkpoint_generation)));
  }
  if (replay_tail) {
    DQM_ASSIGN_OR_RETURN(crowd::VoteWal::ReplayStats replay,
                         wal_.ReplayAndTruncate(num_items, restore));
    stats.replayed_votes = replay.votes;
    stats.torn_records = replay.torn_records;
    tm.replayed->Add(replay.votes);
    tm.torn->Add(replay.torn_records);
  }
  return stats;
}

size_t SessionDurability::RetainedBytes() const {
  MutexLock lock(wal_mutex_);
  return wal_.RetainedBytes();
}

}  // namespace dqm::engine
