#include "engine/session.h"

#include <bit>
#include <thread>
#include <utility>

#include "common/string_util.h"

namespace dqm::engine {

std::array<uint64_t, SnapshotCell::kWords> SnapshotCell::Encode(
    const Snapshot& snapshot) {
  return {snapshot.version,
          snapshot.num_votes,
          static_cast<uint64_t>(snapshot.num_items),
          static_cast<uint64_t>(snapshot.majority_count),
          static_cast<uint64_t>(snapshot.nominal_count),
          std::bit_cast<uint64_t>(snapshot.estimated_total_errors),
          std::bit_cast<uint64_t>(snapshot.estimated_undetected_errors),
          std::bit_cast<uint64_t>(snapshot.quality_score)};
}

Snapshot SnapshotCell::Decode(const std::array<uint64_t, kWords>& words) {
  Snapshot snapshot;
  snapshot.version = words[0];
  snapshot.num_votes = words[1];
  snapshot.num_items = static_cast<size_t>(words[2]);
  snapshot.majority_count = static_cast<size_t>(words[3]);
  snapshot.nominal_count = static_cast<size_t>(words[4]);
  snapshot.estimated_total_errors = std::bit_cast<double>(words[5]);
  snapshot.estimated_undetected_errors = std::bit_cast<double>(words[6]);
  snapshot.quality_score = std::bit_cast<double>(words[7]);
  return snapshot;
}

void SnapshotCell::Store(const Snapshot& snapshot) {
  // Boehm's seqlock recipe ("Can seqlocks get along with programming
  // language memory models?"): odd sequence marks a write in flight.
  uint64_t seq = seq_.load(std::memory_order_relaxed);
  seq_.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  std::array<uint64_t, kWords> words = Encode(snapshot);
  for (size_t i = 0; i < kWords; ++i) {
    words_[i].store(words[i], std::memory_order_relaxed);
  }
  seq_.store(seq + 2, std::memory_order_release);
}

Snapshot SnapshotCell::Load() const {
  for (;;) {
    uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1) {
      std::this_thread::yield();  // a Store is mid-flight
      continue;
    }
    std::array<uint64_t, kWords> words;
    for (size_t i = 0; i < kWords; ++i) {
      words[i] = words_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) return Decode(words);
  }
}

EstimationSession::EstimationSession(
    std::string name, size_t num_items,
    const core::DataQualityMetric::Options& options)
    : name_(std::move(name)),
      num_items_(num_items),
      metric_(num_items, options),
      method_name_(metric_.method_name()) {
  Snapshot initial;
  initial.num_items = num_items_;
  snapshot_.Store(initial);
}

Status EstimationSession::AddVotes(std::span<const crowd::VoteEvent> votes) {
  // Validate up front so a bad batch is rejected atomically: the metric's own
  // range check aborts the process (DQM_CHECK), which a serving layer must
  // turn into a recoverable error instead.
  for (const crowd::VoteEvent& event : votes) {
    if (event.item >= num_items_) {
      return Status::InvalidArgument(
          StrFormat("session '%s': item id %u out of range (num_items=%zu)",
                    name_.c_str(), event.item, num_items_));
    }
  }
  if (votes.empty()) return Status::OK();

  std::lock_guard<std::mutex> lock(mutex_);
  for (const crowd::VoteEvent& event : votes) {
    metric_.AddVote(event.task, event.worker, event.item,
                    event.vote == crowd::Vote::kDirty);
  }
  ++version_;

  Snapshot next;
  next.version = version_;
  next.num_votes = metric_.num_votes();
  next.num_items = num_items_;
  next.majority_count = metric_.MajorityCount();
  next.nominal_count = metric_.NominalCount();
  next.estimated_total_errors = metric_.EstimatedTotalErrors();
  next.estimated_undetected_errors = metric_.EstimatedUndetectedErrors();
  next.quality_score = metric_.QualityScore();
  snapshot_.Store(next);
  return Status::OK();
}

}  // namespace dqm::engine
