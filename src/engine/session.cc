#include "engine/session.h"

#include <algorithm>
#include <bit>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "engine/durability.h"
#include "telemetry/metric_names.h"

namespace dqm::engine {

SnapshotCell::SnapshotCell(size_t num_estimators)
    : num_estimators_(num_estimators),
      words_(std::make_unique<std::atomic<uint64_t>[]>(num_words())) {
  // invariant: a metric always carries at least one estimator.
  DQM_CHECK_GT(num_estimators_, 0u);
  for (size_t i = 0; i < num_words(); ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

void SnapshotCell::Store(const Snapshot& snapshot) {
  // invariant: the cell is sized for this pipeline's estimator count.
  DQM_CHECK_EQ(snapshot.estimates.size(), num_estimators_);
  // Boehm's seqlock recipe ("Can seqlocks get along with programming
  // language memory models?"): odd sequence marks a write in flight.
  uint64_t seq = seq_.load(std::memory_order_relaxed);
  seq_.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  auto put = [this](size_t index, uint64_t word) {
    words_[index].store(word, std::memory_order_relaxed);
  };
  put(0, snapshot.version);
  put(1, snapshot.num_votes);
  put(2, static_cast<uint64_t>(snapshot.num_items));
  put(3, static_cast<uint64_t>(snapshot.majority_count));
  put(4, static_cast<uint64_t>(snapshot.nominal_count));
  put(5, std::bit_cast<uint64_t>(snapshot.estimated_total_errors));
  put(6, std::bit_cast<uint64_t>(snapshot.estimated_undetected_errors));
  put(7, std::bit_cast<uint64_t>(snapshot.quality_score));
  for (size_t i = 0; i < num_estimators_; ++i) {
    const EstimatorEstimate& row = snapshot.estimates[i];
    put(kHeaderWords + 3 * i + 0, std::bit_cast<uint64_t>(row.total_errors));
    put(kHeaderWords + 3 * i + 1,
        std::bit_cast<uint64_t>(row.undetected_errors));
    put(kHeaderWords + 3 * i + 2, std::bit_cast<uint64_t>(row.quality_score));
  }
  seq_.store(seq + 2, std::memory_order_release);
}

Snapshot SnapshotCell::Load() const {
  Snapshot snapshot;
  LoadInto(snapshot);
  return snapshot;
}

void SnapshotCell::LoadInto(Snapshot& snapshot) const {
  // Retries (a Store in flight, or one that landed mid-copy) are the
  // seqlock's contention signal; the counter lives at function scope so the
  // metric is registered — at zero — from the first uncontended read.
  static telemetry::Counter* retries =
      telemetry::MetricsRegistry::Global().GetCounter(
          telemetry::metric_names::kSeqlockReadRetriesTotal);
  // The rows vector is sized before the retry loop (a no-op when the caller
  // reuses a Snapshot): a hot reader polling the cell pays no allocation
  // per read, let alone per retry.
  snapshot.estimates.resize(num_estimators_);
  for (;;) {
    uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1) {
      retries->Increment();
      std::this_thread::yield();  // a Store is mid-flight
      continue;
    }
    auto get = [this](size_t index) {
      return words_[index].load(std::memory_order_relaxed);
    };
    snapshot.version = get(0);
    snapshot.num_votes = get(1);
    snapshot.num_items = static_cast<size_t>(get(2));
    snapshot.majority_count = static_cast<size_t>(get(3));
    snapshot.nominal_count = static_cast<size_t>(get(4));
    snapshot.estimated_total_errors = std::bit_cast<double>(get(5));
    snapshot.estimated_undetected_errors = std::bit_cast<double>(get(6));
    snapshot.quality_score = std::bit_cast<double>(get(7));
    for (size_t i = 0; i < num_estimators_; ++i) {
      EstimatorEstimate& row = snapshot.estimates[i];
      row.total_errors = std::bit_cast<double>(get(kHeaderWords + 3 * i));
      row.undetected_errors =
          std::bit_cast<double>(get(kHeaderWords + 3 * i + 1));
      row.quality_score =
          std::bit_cast<double>(get(kHeaderWords + 3 * i + 2));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) return;
    retries->Increment();
  }
}

Result<SessionOptions> ParsePublishCadenceSpec(std::string_view spec,
                                               SessionOptions base) {
  if (spec == "every_batch") {
    base.cadence = PublishCadence::kEveryBatch;
    return base;
  }
  if (spec == "manual") {
    base.cadence = PublishCadence::kManual;
    return base;
  }
  constexpr std::string_view kEveryN = "every_n_votes";
  if (spec.substr(0, kEveryN.size()) == kEveryN) {
    base.cadence = PublishCadence::kEveryNVotes;
    std::string_view rest = spec.substr(kEveryN.size());
    if (rest.empty()) return base;  // keep the default threshold
    if (rest[0] != ':') {
      return Status::InvalidArgument(StrFormat(
          "bad publish cadence '%.*s': expected every_n_votes[:N]",
          static_cast<int>(spec.size()), spec.data()));
    }
    rest.remove_prefix(1);
    uint64_t n = 0;
    if (rest.empty()) {
      return Status::InvalidArgument("publish cadence every_n_votes: missing N");
    }
    for (char c : rest) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(StrFormat(
            "bad publish cadence threshold '%.*s'",
            static_cast<int>(rest.size()), rest.data()));
      }
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    if (n == 0) {
      return Status::InvalidArgument(
          "publish cadence every_n_votes: N must be positive");
    }
    base.publish_every_votes = n;
    return base;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown publish cadence '%.*s' (every_batch | every_n_votes[:N] | "
      "manual)",
      static_cast<int>(spec.size()), spec.data()));
}

Result<SessionOptions> ParseWalGroupCommitSpec(std::string_view spec,
                                               SessionOptions base) {
  std::string_view digits = spec;
  bool is_ms = false;
  if (digits.size() >= 2 && digits.substr(digits.size() - 2) == "ms") {
    is_ms = true;
    digits.remove_suffix(2);
  }
  if (digits.empty()) {
    return Status::InvalidArgument(StrFormat(
        "bad WAL group commit '%.*s': expected N (votes) or Nms",
        static_cast<int>(spec.size()), spec.data()));
  }
  uint64_t n = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(StrFormat(
          "bad WAL group commit '%.*s': expected N (votes) or Nms",
          static_cast<int>(spec.size()), spec.data()));
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (n > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(StrFormat(
          "bad WAL group commit '%.*s': overflows uint64",
          static_cast<int>(spec.size()), spec.data()));
    }
    n = n * 10 + digit;
  }
  if (n == 0) {
    return Status::InvalidArgument(
        "WAL group commit threshold must be positive");
  }
  if (is_ms) {
    base.wal_group_commit_ms = n;
  } else {
    base.wal_group_commit_votes = n;
  }
  return base;
}

namespace {

/// Engine-wide hot-path metrics, resolved once. Latency histograms are fed
/// only while telemetry::Enabled() (they need clock reads); the counters
/// and the size histogram are always on — their per-hit cost is one
/// relaxed fetch_add (plus a CLZ for the histogram), cheaper than a branch
/// worth skipping them over.
struct SessionMetrics {
  telemetry::Counter* batches;
  telemetry::Counter* votes;
  telemetry::Counter* publishes;
  telemetry::Counter* deferred;  // cadence said "not yet" after a commit
  telemetry::Histogram* batch_votes;
  telemetry::Histogram* commit_ns;
  telemetry::Histogram* publish_ns;
  telemetry::Histogram* estimate_ns;

  SessionMetrics() {
    auto& registry = telemetry::MetricsRegistry::Global();
    batches = registry.GetCounter(telemetry::metric_names::kCommitBatchesTotal);
    votes = registry.GetCounter(telemetry::metric_names::kCommitVotesTotal);
    publishes = registry.GetCounter(telemetry::metric_names::kPublishesTotal);
    deferred = registry.GetCounter(telemetry::metric_names::kPublishDeferredTotal);
    batch_votes = registry.GetHistogram(telemetry::metric_names::kCommitBatchVotes);
    commit_ns = registry.GetHistogram(telemetry::metric_names::kCommitLatencyNs);
    publish_ns = registry.GetHistogram(telemetry::metric_names::kPublishLatencyNs);
    estimate_ns = registry.GetHistogram(telemetry::metric_names::kPublishEstimateNs);
  }
};

SessionMetrics& Metrics() {
  static SessionMetrics* metrics = new SessionMetrics();  // never destroyed
  return *metrics;
}

std::vector<std::string> InitialNames(const core::DataQualityMetric& metric) {
  return metric.estimator_names();
}

Snapshot InitialSnapshot(size_t num_items, size_t num_estimators) {
  Snapshot initial;
  initial.num_items = num_items;
  initial.estimates.resize(num_estimators);
  return initial;
}

/// Auto stripe count: enough stripes that a producer per core rarely
/// collides, without sharding tiny universes to confetti (the log clamps
/// further so every stripe spans at least a cache line of tallies).
size_t DefaultStripeCount() {
  return std::clamp<size_t>(ThreadPool::DefaultThreadCount(), 2, 8);
}

}  // namespace

size_t ResolveIngestStripes(const SessionOptions& options,
                            bool supports_concurrent_ingest) {
  // Stripe on explicit request (>= 2), or automatically when the cadence is
  // coalesced — never by default under kEveryBatch, where the serialized
  // O(batch) commit+publish beats a striped O(num_items) reconcile per
  // batch for a single producer.
  const bool want_striping =
      options.ingest_stripes >= 2 ||
      (options.ingest_stripes == 0 &&
       options.cadence != PublishCadence::kEveryBatch);
  if (!want_striping || !supports_concurrent_ingest) return 0;
  return options.ingest_stripes == 0 ? DefaultStripeCount()
                                     : options.ingest_stripes;
}

EstimationSession::EstimationSession(
    std::string name, size_t num_items,
    const core::DataQualityMetric::Options& options)
    : EstimationSession(std::move(name),
                        core::DataQualityMetric(num_items, options)) {}

EstimationSession::EstimationSession(
    std::string name, core::DataQualityMetric metric,
    const SessionOptions& session_options,
    std::unique_ptr<SessionDurability> durability,
    std::vector<std::string> specs)
    : name_(std::move(name)),
      num_items_(metric.num_items()),
      options_(session_options),
      specs_(std::move(specs)),
      durability_(std::move(durability)),
      metric_(std::move(metric)),
      estimator_names_(InitialNames(metric_)),
      snapshot_(estimator_names_.size()) {
  // Checkpoints serialize the restorable kCounts compacted state; panels
  // outside it (order-sensitive SWITCH, kFullEvents retention) keep the
  // full-order WAL instead — decided before striping flips the log's mode.
  checkpointable_ = durability_ != nullptr &&
                    durability_->checkpoints_enabled() &&
                    metric_.SupportsConcurrentIngest();
  // One resolution path (shared with the engine's durability manifest, so
  // a recovered session reproduces this layout exactly).
  const size_t resolved_stripes =
      ResolveIngestStripes(options_, metric_.SupportsConcurrentIngest());
  if (resolved_stripes >= 2) {
    metric_.EnableConcurrentIngest(resolved_stripes);
    striped_ = true;
  }
  snapshot_.Store(InitialSnapshot(num_items_, estimator_names_.size()));
  // Per-session×estimator exported quality gauges, refreshed on every
  // publish. Acquired (refcounted), not pinned: when the last session
  // carrying a (session, estimator) identity dies, the gauge leaves the
  // exposition — closed sessions don't haunt the metrics page.
  auto& registry = telemetry::MetricsRegistry::Global();
  quality_gauges_.reserve(estimator_names_.size());
  total_errors_gauges_.reserve(estimator_names_.size());
  for (const std::string& estimator : estimator_names_) {
    telemetry::LabelSet labels{{"estimator", estimator}, {"session", name_}};
    quality_gauges_.push_back(
        registry.AcquireGauge(telemetry::metric_names::kSessionQuality, labels));
    quality_gauges_.back()->Set(1.0);  // empty session: all labels "correct"
    total_errors_gauges_.push_back(
        registry.AcquireGauge(telemetry::metric_names::kSessionTotalErrors, labels));
  }
}

EstimationSession::~EstimationSession() {
  auto& registry = telemetry::MetricsRegistry::Global();
  for (const std::string& estimator : estimator_names_) {
    telemetry::LabelSet labels{{"estimator", estimator}, {"session", name_}};
    registry.ReleaseGauge(telemetry::metric_names::kSessionQuality, labels);
    registry.ReleaseGauge(telemetry::metric_names::kSessionTotalErrors, labels);
  }
}

Status EstimationSession::AddVotes(std::span<const crowd::VoteEvent> votes) {
  // Validate up front so a bad batch is rejected atomically: the metric's own
  // range check aborts the process (DQM_CHECK), which a serving layer must
  // turn into a recoverable error instead.
  for (const crowd::VoteEvent& event : votes) {
    if (event.item >= num_items_) {
      return Status::InvalidArgument(
          StrFormat("session '%s': item id %u out of range (num_items=%zu)",
                    name_.c_str(), event.item, num_items_));
    }
  }
  if (votes.empty()) return Status::OK();

  // Shared cadence rule for both commit paths: under kEveryNVotes the
  // committer whose batch crosses a multiple-of-N boundary of the total
  // committed count publishes. A pure function of the committed total, so
  // striped and serialized sessions publish at identical points for
  // identical input.
  auto crosses_boundary = [this](uint64_t after, uint64_t batch) {
    uint64_t n = std::max<uint64_t>(options_.publish_every_votes, 1);
    return (after - batch) / n != after / n;
  };

  SessionMetrics& tm = Metrics();
  const bool timed = telemetry::Enabled();

  if (striped_) {
    // Write-ahead first: the batch is in the WAL (buffer or disk, per the
    // group-commit cadence) before a single vote is applied, so the log on
    // disk is always a superset of the applied state. A WAL failure rejects
    // the batch here. The WAL mutex is taken WITHOUT the session mutex on
    // this path — the checkpoint quiesce drains the append->apply window
    // via the in-flight count instead (NoteApplied below).
    if (durability_ != nullptr) {
      Status logged = durability_->AppendBatch(votes);
      if (!logged.ok()) return logged;
    }
    // The cheap commit: stripe-local tally increments only, no session
    // mutex — N producers commit into this session concurrently, bounded
    // by stripe collisions rather than lock hand-off latency.
    const uint64_t commit_start = timed ? telemetry::NowNanos() : 0;
    metric_.CommitVotesConcurrent(votes);
    if (durability_ != nullptr) durability_->NoteApplied();
    uint64_t after = committed_votes_.fetch_add(votes.size(),
                                                std::memory_order_relaxed) +
                     votes.size();
    tm.batches->Increment();
    tm.votes->Add(votes.size());
    tm.batch_votes->Record(votes.size());
    if (timed) {
      const uint64_t commit_end = telemetry::NowNanos();
      tm.commit_ns->Record(commit_end - commit_start);
      flight_.Record(telemetry::SpanKind::kCommit, commit_start, commit_end,
                     votes.size());
    }
    switch (options_.cadence) {
      case PublishCadence::kEveryBatch:
        Publish();
        break;
      case PublishCadence::kEveryNVotes:
        if (crosses_boundary(after, votes.size())) {
          Publish();
        } else {
          tm.deferred->Increment();
        }
        break;
      case PublishCadence::kManual:
        tm.deferred->Increment();
        break;
    }
    if (checkpointable_) MaybeCheckpoint(after, votes.size());
    return Status::OK();
  }

  MutexLock lock(mutex_);
  // Serialized path: append under the session mutex (session -> WAL nests
  // in rank order), so during a checkpoint — which holds the session mutex
  // — there is never an appended-but-unapplied batch to wait for.
  if (durability_ != nullptr) {
    Status logged = durability_->AppendBatch(votes);
    if (!logged.ok()) return logged;
  }
  const uint64_t commit_start = timed ? telemetry::NowNanos() : 0;
  for (const crowd::VoteEvent& event : votes) {
    metric_.AddVote(event.task, event.worker, event.item,
                    event.vote == crowd::Vote::kDirty);
  }
  if (durability_ != nullptr) durability_->NoteApplied();
  uint64_t after = committed_votes_.fetch_add(votes.size(),
                                              std::memory_order_relaxed) +
                   votes.size();
  tm.batches->Increment();
  tm.votes->Add(votes.size());
  tm.batch_votes->Record(votes.size());
  if (timed) {
    const uint64_t commit_end = telemetry::NowNanos();
    tm.commit_ns->Record(commit_end - commit_start);
    flight_.Record(telemetry::SpanKind::kCommit, commit_start, commit_end,
                   votes.size());
  }
  switch (options_.cadence) {
    case PublishCadence::kEveryBatch:
      PublishInternalLocked();
      break;
    case PublishCadence::kEveryNVotes:
      if (crosses_boundary(after, votes.size())) {
        PublishInternalLocked();
      } else {
        tm.deferred->Increment();
      }
      break;
    case PublishCadence::kManual:
      tm.deferred->Increment();
      break;
  }
  if (checkpointable_) {
    const uint64_t n =
        std::max<uint64_t>(options_.checkpoint_every_votes, 1);
    if ((after - votes.size()) / n != after / n) CheckpointLocked();
  }
  return Status::OK();
}

void EstimationSession::MaybeCheckpoint(uint64_t after, uint64_t batch) {
  const uint64_t n = std::max<uint64_t>(options_.checkpoint_every_votes, 1);
  if ((after - batch) / n == after / n) return;
  MutexLock lock(mutex_);
  CheckpointLocked();
}

void EstimationSession::CheckpointLocked() {
  Status status = durability_->CommitCheckpoint(
      [this](uint64_t generation) -> Result<crowd::CheckpointData> {
        // Cut the snapshot with committers paused: the WAL quiesce already
        // drained appended-but-unapplied batches, the reconcile pause stops
        // the striped committers mid-air (serialized sessions are quiet
        // under mutex_ by construction), and the fold brings every derived
        // aggregate current before it is serialized.
        crowd::ResponseLog::IngestPause pause =
            metric_.ReconcileForEstimates();
        return crowd::CheckpointFromLog(metric_.log(), generation);
      });
  if (!status.ok()) {
    // The batch is applied AND write-ahead logged, so failing to compact
    // the WAL into a snapshot loses nothing — recovery just replays a
    // longer tail. Log and serve on.
    DQM_LOG(Error) << "session '" << name_
                   << "': checkpoint failed: " << status.message();
  }
}

void EstimationSession::Publish() {
  MutexLock lock(mutex_);
  PublishInternalLocked();
}

void EstimationSession::PublishInternalLocked() {
  const bool timed = telemetry::Enabled();
  const uint64_t publish_start = timed ? telemetry::NowNanos() : 0;
  if (striped_) {
    // Pause committers for the reconcile + report window: estimators read
    // the shared log directly, so the cut must hold still while the
    // pipeline runs. Committers blocked here resume the moment the pause
    // guard drops. (The pause/fold phase histograms are recorded inside
    // PauseAndReconcile, where the phases live.)
    crowd::ResponseLog::IngestPause pause = metric_.ReconcileForEstimates();
    if (timed) {
      flight_.Record(telemetry::SpanKind::kReconcile, publish_start,
                     telemetry::NowNanos(), metric_.num_votes());
    }
    PublishLocked();
  } else {
    PublishLocked();
  }
  if (timed) {
    const uint64_t publish_end = telemetry::NowNanos();
    Metrics().publish_ns->Record(publish_end - publish_start);
    flight_.Record(telemetry::SpanKind::kPublish, publish_start, publish_end,
                   version_);
  }
}

void EstimationSession::PublishLocked() {
  const bool timed = telemetry::Enabled();
  const uint64_t estimate_start = timed ? telemetry::NowNanos() : 0;
  ++version_;
  // Refresh the per-session scratch in place — after the first publish the
  // whole publish path (report, snapshot rows, seqlock store) touches no
  // heap. Names are deliberately not carried here: they are immutable per
  // session and the cell does not store them (see SnapshotInto).
  metric_.ReportInto(report_scratch_);
  Snapshot& next = publish_scratch_;
  next.version = version_;
  next.num_votes = report_scratch_.num_votes;
  next.num_items = report_scratch_.num_items;
  next.majority_count = report_scratch_.majority_count;
  next.nominal_count = report_scratch_.nominal_count;
  next.estimates.resize(report_scratch_.estimators.size());
  for (size_t i = 0; i < report_scratch_.estimators.size(); ++i) {
    const core::DataQualityMetric::EstimatorReport& row =
        report_scratch_.estimators[i];
    next.estimates[i].total_errors = row.total_errors;
    next.estimates[i].undetected_errors = row.undetected_errors;
    next.estimates[i].quality_score = row.quality_score;
  }
  next.estimated_total_errors = next.estimates.front().total_errors;
  next.estimated_undetected_errors = next.estimates.front().undetected_errors;
  next.quality_score = next.estimates.front().quality_score;
  snapshot_.Store(next);
  // Export the freshly published estimates as per-session×estimator gauges
  // — the ChungKK17 quality signal as a first-class time series. Relaxed
  // stores; off the commit hot path (publishes are already coalesced).
  for (size_t i = 0; i < next.estimates.size(); ++i) {
    quality_gauges_[i]->Set(next.estimates[i].quality_score);
    total_errors_gauges_[i]->Set(next.estimates[i].total_errors);
  }
  Metrics().publishes->Increment();
  if (timed) {
    const uint64_t estimate_end = telemetry::NowNanos();
    Metrics().estimate_ns->Record(estimate_end - estimate_start);
    flight_.Record(telemetry::SpanKind::kEstimate, estimate_start,
                   estimate_end, version_);
  }
}

Result<EstimationSession::RecoveryReport>
EstimationSession::RecoverFromDurability() {
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("session '%s' is not durable", name_.c_str()));
  }
  SessionDurability::RecoveryStats stats;
  {
    // Recover invokes the restore callback under wal_mutex_ (rank 250), so
    // the callback must not acquire the session mutex (rank 200) — that is
    // the inversion of the session -> WAL edge the commit/checkpoint paths
    // establish. Instead hold mutex_ across the whole Recover call: same
    // ascending edge, and it gives the serialized replay the exact
    // exclusion the serialized commit path has. The striped branch only
    // takes per-stripe locks (rank 300), still ascending.
    MutexLock lock(mutex_);
    auto restore =
        [this](std::span<const crowd::VoteEvent> votes) -> Status {
      if (striped_) {
        metric_.CommitVotesConcurrent(votes);
      } else {
        for (const crowd::VoteEvent& event : votes) {
          metric_.AddVote(event.task, event.worker, event.item,
                          event.vote == crowd::Vote::kDirty);
        }
      }
      committed_votes_.fetch_add(votes.size(), std::memory_order_relaxed);
      return Status::OK();
    };
    Result<SessionDurability::RecoveryStats> recovered =
        durability_->Recover(num_items_, restore);
    if (!recovered.ok()) return recovered.status();
    stats = *recovered;
  }
  // Recovery replays into the log without publishing; one publish at the
  // end brings the snapshot (and the exported quality gauges) current so
  // queries against the recovered session see the recovered estimates.
  Publish();
  RecoveryReport report;
  report.votes_restored = stats.checkpoint_votes + stats.replayed_votes;
  report.torn_records = stats.torn_records;
  report.had_checkpoint = stats.had_checkpoint;
  return report;
}

Status EstimationSession::FlushDurability() {
  if (durability_ == nullptr) return Status::OK();
  return durability_->Flush();
}

Result<crowd::CheckpointData> EstimationSession::ExportState() {
  // Same quiescing discipline as a checkpoint cut, minus the WAL protocol:
  // mutex_ stills the serialized path, the reconcile pause stills striped
  // committers, and CheckpointFromLog rejects panels whose state cannot be
  // rebuilt from compacted counts (SWITCH / kFullEvents).
  MutexLock lock(mutex_);
  crowd::ResponseLog::IngestPause pause = metric_.ReconcileForEstimates();
  return crowd::CheckpointFromLog(metric_.log(), /*wal_generation=*/1);
}

size_t EstimationSession::RetainedBytes() const {
  // The session mutex excludes concurrent publishes (whose pause guard
  // holds every stripe lock — the log's RetainedBytes takes them one at a
  // time and must not nest inside the pause). Committers racing on the
  // striped path hold single stripe locks only, which the log read waits
  // out per stripe.
  MutexLock lock(mutex_);
  size_t bytes = metric_.log().RetainedBytes();
  // WAL buffer + replay scratch ride on the same accounting: durable
  // sessions retain them for the session's lifetime (session -> WAL nests
  // in rank order).
  if (durability_ != nullptr) bytes += durability_->RetainedBytes();
  return bytes;
}

Snapshot EstimationSession::snapshot() const {
  Snapshot snapshot;
  SnapshotInto(snapshot);
  return snapshot;
}

void EstimationSession::SnapshotInto(Snapshot& out) const {
  snapshot_.LoadInto(out);
  out.method_name = estimator_names_.front();
  for (size_t i = 0; i < out.estimates.size(); ++i) {
    out.estimates[i].name = estimator_names_[i];
  }
  // Durability health rides outside the seqlock cell: set it every read so
  // a reused `out` never carries a stale flag.
  if (durability_ != nullptr) {
    out.durability_degraded = durability_->degraded();
    out.dropped_durability_votes = durability_->dropped_durability_votes();
  } else {
    out.durability_degraded = false;
    out.dropped_durability_votes = 0;
  }
}

}  // namespace dqm::engine
