#ifndef DQM_ENGINE_SESSION_H_
#define DQM_ENGINE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/align.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "core/dqm.h"
#include "crowd/vote.h"
#include "engine/durability.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace dqm::engine {

/// One estimator's numbers inside a Snapshot. `name` is the estimator's
/// display name ("SWITCH", "CHAO92", ...) so report consumers can say which
/// estimator produced which number.
struct EstimatorEstimate {
  std::string name;
  double total_errors = 0.0;
  double undetected_errors = 0.0;
  double quality_score = 1.0;
};

/// Immutable point-in-time view of one session's estimates. Snapshots are
/// built by the (serialized) publish path, so all fields are mutually
/// consistent; readers obtain them without taking any lock.
///
/// A session runs a multi-estimator pipeline (see core::DataQualityMetric):
/// `estimates` has one row per configured estimator, in spec order. The
/// scalar estimate fields mirror row 0 — the primary estimator — so
/// single-method callers keep working unchanged.
struct Snapshot {
  /// Number of publishes; strictly increases per publish (== committed
  /// batches under the default every-batch cadence).
  uint64_t version = 0;
  uint64_t num_votes = 0;
  size_t num_items = 0;
  /// VOTING(I) — items whose current majority label is dirty.
  size_t majority_count = 0;
  /// NOMINAL(I) — items with at least one dirty vote.
  size_t nominal_count = 0;
  /// Primary estimator (== estimates[0]).
  double estimated_total_errors = 0.0;
  double estimated_undetected_errors = 0.0;
  /// 1 - undetected/N, clamped to [0, 1].
  double quality_score = 1.0;
  /// Display name of the primary estimator.
  std::string method_name;
  /// One row per configured estimator, in spec order.
  std::vector<EstimatorEstimate> estimates;
  /// Durability health, read from the session's durability engine at
  /// snapshot time (not part of the seqlock cell — it is health metadata,
  /// not published estimator state, and may be a publish newer than
  /// `version`). Always false/0 for in-memory sessions.
  bool durability_degraded = false;
  /// Cumulative votes acknowledged without a durable record (see
  /// SessionDurability::dropped_durability_votes).
  uint64_t dropped_durability_votes = 0;
};

/// Seqlock-published Snapshot storage: a version word plus the snapshot's
/// numeric fields, all `std::atomic`. The cell is sized at construction for
/// the session's estimator count — the fixed header plus three words per
/// estimator row. Writers (already serialized by the session's publish
/// lock) bump the sequence odd, store the fields, bump it even; readers
/// copy the fields and retry iff a write was in flight. Every access is an
/// atomic operation, so the protocol is fully visible to ThreadSanitizer —
/// unlike libstdc++'s `std::atomic<std::shared_ptr>`, whose internal
/// lock-bit scheme TSan flags as a race.
///
/// The sequence word lives on its own cache line
/// (std::hardware_destructive_interference_size, 64-byte fallback): readers
/// spin-check it on every load, and sharing its line with unrelated session
/// state would bounce that line between the publisher and every polling
/// core.
///
/// Estimator names are immutable per session and therefore not part of the
/// cell; Load() returns rows with empty names and the session fills them
/// in.
class SnapshotCell {
 public:
  explicit SnapshotCell(size_t num_estimators);

  /// Publishes `snapshot` (which must carry exactly the configured number
  /// of estimator rows). Callers must serialize Store() invocations.
  void Store(const Snapshot& snapshot);

  /// Returns a consistent copy; lock-free (retries only while a concurrent
  /// Store is mid-flight). Row names are left empty.
  Snapshot Load() const;

  /// As Load(), but reuses `snapshot`'s row storage: a reader that polls
  /// with the same Snapshot object performs zero heap allocations per read
  /// after the first. Row names are left untouched.
  void LoadInto(Snapshot& snapshot) const;

 private:
  static constexpr size_t kHeaderWords = 8;
  size_t num_words() const { return kHeaderWords + 3 * num_estimators_; }

  size_t num_estimators_;
  alignas(kCacheLineBytes) std::atomic<uint64_t> seq_{0};
  alignas(kCacheLineBytes) std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

/// When a session turns committed votes into a published snapshot.
enum class PublishCadence {
  /// Publish after every committed AddVotes batch — the historical default,
  /// bit-compatible with pre-cadence sessions.
  kEveryBatch,
  /// Publish whenever the session's total committed-vote count crosses a
  /// multiple of SessionOptions::publish_every_votes — the committer whose
  /// batch crosses the boundary publishes. The coalescing configuration:
  /// producers stream batches, one of them runs the estimator pipeline
  /// every ~N votes. The schedule is a function of the committed total
  /// alone (identical on the striped and serialized paths, and unaffected
  /// by interleaved explicit Publish() calls).
  kEveryNVotes,
  /// Only explicit Publish() calls publish. Readers see the initial empty
  /// snapshot until then.
  kManual,
};

/// Per-session serving knobs (all orthogonal to the estimator panel).
struct SessionOptions {
  PublishCadence cadence = PublishCadence::kEveryBatch;
  /// Threshold for PublishCadence::kEveryNVotes (clamped to >= 1).
  uint64_t publish_every_votes = 4096;
  /// Ingest-stripe request. 0 = auto: hardware-scaled striping whenever the
  /// estimator panel is producer-order independent AND the cadence is
  /// coalesced (kEveryNVotes / kManual) — under the default kEveryBatch a
  /// striped publish would pay an O(num_items) reconcile per batch where
  /// the serialized path pays O(batch), so auto never pessimizes the
  /// historical configuration. 1 = force the serialized commit path.
  /// k >= 2 = ask for k stripes under any cadence (clamped to the item
  /// universe). Panels containing an order-sensitive estimator (SWITCH)
  /// fall back to the serialized path regardless.
  size_t ingest_stripes = 0;
  /// Root directory for durable sessions ("" = in-memory only, the
  /// historical behavior). Each session gets its own subdirectory
  /// (percent-encoded name) holding manifest, WAL, and checkpoint; votes
  /// are write-ahead logged before being applied, and
  /// DqmEngine::RecoverSessions(root) rebuilds every session after a crash.
  std::string durability_dir;
  /// WAL group commit: fsync once this many votes accumulated since the
  /// last sync (>= 1; 1 = fsync every batch). Also the ParseWalGroupCommitSpec
  /// "N" spelling.
  uint64_t wal_group_commit_votes = 256;
  /// Optional time-based group commit: fsync at most this many ms after a
  /// vote was buffered (0 = off). The "Nms" spelling.
  uint64_t wal_group_commit_ms = 0;
  /// Checkpoint the compacted log state whenever the committed-vote total
  /// crosses a multiple of this, truncating the WAL (0 = never checkpoint;
  /// recovery replays the whole WAL). Only takes effect for panels on the
  /// concurrent-capable kCounts path; order-sensitive panels (SWITCH) get
  /// WAL-only durability — a checkpoint's synthetic replay cannot
  /// reproduce arrival order, which those estimators consume.
  uint64_t checkpoint_every_votes = 0;
  /// What the session does when its WAL seals after an I/O failure:
  /// fail_stop (reject batches until a checkpoint reset — the default) or
  /// degrade_to_volatile (keep committing in memory, flagged in snapshots
  /// and dqm_sessions_degraded, re-arming at the next checkpoint).
  DurabilityFailurePolicy durability_failure_policy =
      DurabilityFailurePolicy::kFailStop;
};

/// Parses "every_batch" | "manual" | "every_n_votes[:N]" (e.g.
/// "every_n_votes:8192") into `base`'s cadence fields — the spelling the
/// CLI / bench flags use. InvalidArgument on anything else.
Result<SessionOptions> ParsePublishCadenceSpec(std::string_view spec,
                                               SessionOptions base = {});

/// Parses the WAL group-commit spelling the CLI / bench flags use into
/// `base`'s wal_group_commit fields: "N" (votes) or "Nms" (milliseconds;
/// keeps the vote threshold too — whichever fires first syncs).
/// InvalidArgument on anything else.
Result<SessionOptions> ParseWalGroupCommitSpec(std::string_view spec,
                                               SessionOptions base = {});

/// Resolves SessionOptions::ingest_stripes against a panel's capability:
/// 0 = the serialized commit path, otherwise the stripe count the session
/// will enable (auto requests resolve against this machine's hardware).
/// The engine records the RESOLVED value in a durable session's manifest so
/// recovery rebuilds the same stripe layout on any machine.
size_t ResolveIngestStripes(const SessionOptions& options,
                            bool supports_concurrent_ingest);

class SessionDurability;

/// One live estimation stream: a `core::DataQualityMetric` (possibly with
/// several attached estimators) made safe for concurrent use. Readers poll
/// `snapshot()` lock-free (a seqlock copy), so a hot query path never
/// contends with ingestion. Writers commit through `AddVotes`; how commits
/// become snapshots is governed by SessionOptions.
///
/// ## Commit paths
///
/// *Striped* (producer-order-independent panels — every estimator a
/// shared-stats scorer: CHAO92 family, VOTING, NOMINAL, EM-VOTING — under
/// the serving kCounts retention): `AddVotes` commits tallies into
/// per-item-range stripes of the shared log, each with its own lock, so N
/// producers ingest into ONE session concurrently; the publish path pauses
/// committers, reconciles, runs the estimator pipeline, and stores the
/// seqlock snapshot. Tallies/counts are bit-identical to any serialized
/// feed of the same votes; EM estimates agree within their declared
/// tolerance (float summation order follows the stripe layout).
///
/// *Serialized* (panels with an order-sensitive estimator, e.g. SWITCH, or
/// SessionOptions::ingest_stripes == 1): batches from different threads are
/// applied in lock-acquisition order under one mutex, vote order within a
/// batch preserved — exactly the historical behavior. Order across
/// concurrent writers is unspecified, so order-sensitive panels should be
/// fed by a single producer per session.
class EstimationSession {
 public:
  EstimationSession(std::string name, size_t num_items,
                    const core::DataQualityMetric::Options& options =
                        core::DataQualityMetric::Options());

  /// Wraps an already-configured pipeline (the engine's spec-based
  /// OpenSession path). `durability`, when non-null, write-ahead logs every
  /// committed batch (the engine constructs it from
  /// SessionOptions::durability_dir). `specs` are the estimator spec
  /// strings the pipeline was built from — retained verbatim so the session
  /// can be re-created elsewhere (MigrateSession, standby opens).
  EstimationSession(std::string name, core::DataQualityMetric metric,
                    const SessionOptions& session_options = SessionOptions(),
                    std::unique_ptr<SessionDurability> durability = nullptr,
                    std::vector<std::string> specs = {});

  EstimationSession(const EstimationSession&) = delete;
  EstimationSession& operator=(const EstimationSession&) = delete;

  /// Releases the session's per-session telemetry gauges (so the exposition
  /// surface forgets sessions that closed once every handle drops).
  ~EstimationSession();

  const std::string& name() const { return name_; }
  size_t num_items() const { return num_items_; }

  /// Commits a batch of votes (and publishes a fresh snapshot when the
  /// cadence says so). The batch is all-or-nothing: any out-of-range item
  /// id rejects the whole batch with InvalidArgument before a single vote
  /// is applied.
  Status AddVotes(std::span<const crowd::VoteEvent> votes)
      DQM_EXCLUDES(mutex_);

  /// Single-vote convenience wrapper (one batch of one vote).
  Status AddVote(const crowd::VoteEvent& event) {
    return AddVotes(std::span<const crowd::VoteEvent>(&event, 1));
  }

  /// Publishes a snapshot of everything committed so far — the explicit
  /// flush for kManual / kEveryNVotes cadences (harmless, if pointless,
  /// under kEveryBatch). Safe from any thread; publishes serialize.
  void Publish() DQM_EXCLUDES(mutex_);

  /// Current estimates, without blocking on writers.
  Snapshot snapshot() const;

  /// As snapshot(), but reuses `out`'s storage: the estimator-name strings
  /// and row vector are written in place, so a hot reader polling with the
  /// same Snapshot object allocates nothing per query in steady state
  /// (names are carried once per session and string assignment reuses the
  /// receiver's capacity).
  void SnapshotInto(Snapshot& out) const;

  /// True when this session took the striped multi-producer commit path.
  bool concurrent_ingest() const { return striped_; }

  /// Votes committed so far (>= the published num_votes between publishes).
  uint64_t committed_votes() const {
    return committed_votes_.load(std::memory_order_relaxed);
  }

  const SessionOptions& options() const { return options_; }

  /// Name of the primary estimation method ("SWITCH", "CHAO92", ...).
  std::string_view method_name() const { return estimator_names_.front(); }

  /// Display names of every configured estimator, in spec order.
  const std::vector<std::string>& estimator_names() const {
    return estimator_names_;
  }

  /// Approximate heap bytes this session retains for vote storage — the
  /// engine's RetainedBytes gauge roll-up reads this. Takes the session
  /// mutex (and, per stripe, the stripe locks), so it is safe against live
  /// committers and publishes. Must NOT be called from inside the publish
  /// path (the stripe locks would be re-acquired — the debug lock-order
  /// checker turns that mistake into an immediate abort).
  size_t RetainedBytes() const DQM_EXCLUDES(mutex_);

  /// The session's span ring: recent commit / reconcile / estimate /
  /// publish spans for post-hoc "why was this publish slow" forensics.
  /// Snapshot() is lock-free and safe from any thread.
  const telemetry::FlightRecorder& flight_recorder() const { return flight_; }

  /// True when this session write-ahead logs its votes.
  bool durable() const { return durability_ != nullptr; }

  /// Estimator spec strings this session was opened with (empty for
  /// sessions built from a raw DataQualityMetric without specs). What
  /// MigrateSession / the standby open path use to rebuild the panel.
  const std::vector<std::string>& specs() const { return specs_; }

  /// The session's durability engine — the attach point for replication
  /// (ship hooks, durable WAL boundary). nullptr for in-memory sessions.
  SessionDurability* durability_engine() { return durability_.get(); }

  /// Test access to the durability engine (crash-injection phase hooks).
  /// nullptr for in-memory sessions.
  SessionDurability* durability_for_test() { return durability_.get(); }

  /// Snapshots this session's full compacted state as checkpoint data
  /// (generation 1), quiescing ingest for the duration — the source half of
  /// a migration: EmitCheckpointVotes over the result rebuilds tallies and
  /// pair counts bit-identically through a fresh session's ingest path.
  /// FailedPrecondition for panels outside the snapshot-restorable kCounts
  /// state (SWITCH / full-event retention), which cannot move this way.
  Result<crowd::CheckpointData> ExportState() DQM_EXCLUDES(mutex_);

  /// What RecoverFromDurability rebuilt (surfaced per session by
  /// DqmEngine::RecoverSessions).
  struct RecoveryReport {
    /// Checkpoint-restored + WAL-replayed votes.
    uint64_t votes_restored = 0;
    /// Torn/corrupt trailing WAL records truncated away.
    uint64_t torn_records = 0;
    bool had_checkpoint = false;
  };

  /// Replays this session's durable state (checkpoint + WAL tail) into the
  /// pipeline and publishes one snapshot of the recovered estimates. Call
  /// exactly once, before the first AddVotes, on a freshly constructed
  /// session (DqmEngine::RecoverSessions does).
  Result<RecoveryReport> RecoverFromDurability() DQM_EXCLUDES(mutex_);

  /// Forces the WAL to disk (write + fsync) regardless of the group-commit
  /// cadence — the explicit durability barrier. No-op for in-memory
  /// sessions.
  Status FlushDurability() DQM_EXCLUDES(mutex_);

 private:
  /// Refreshes the publish scratch from the metric and stores the seqlock
  /// snapshot. Caller holds mutex_ (and, for striped sessions, the log's
  /// ingest pause).
  void PublishLocked() DQM_REQUIRES(mutex_);

  /// Full publish under mutex_: pauses/reconciles striped logs, runs
  /// PublishLocked, and records publish telemetry (latency split, flight
  /// spans, quality gauges).
  void PublishInternalLocked() DQM_REQUIRES(mutex_);

  /// Commits a checkpoint when the committed total crossed a
  /// checkpoint_every_votes boundary with this batch (the crossing
  /// committer pays). Failures are logged, not returned — the votes are
  /// already applied AND in the WAL, so the session stays correct and
  /// recoverable either way.
  void MaybeCheckpoint(uint64_t after, uint64_t batch) DQM_EXCLUDES(mutex_);

  /// The checkpoint commit itself: quiesces the WAL, cuts the snapshot
  /// (reconcile pause + CheckpointFromLog), rename-commits, resets the WAL.
  /// Failures are logged (see MaybeCheckpoint).
  void CheckpointLocked() DQM_REQUIRES(mutex_);

  const std::string name_;
  const size_t num_items_;
  const SessionOptions options_;
  /// Estimator specs the panel was built from (see specs()).
  const std::vector<std::string> specs_;
  /// Write-ahead log + checkpoints; null for in-memory sessions. Owns its
  /// own kWal-ranked mutex (see engine/durability.h for the commit
  /// protocol); declared before metric_ so appends outlive nothing.
  std::unique_ptr<SessionDurability> durability_;
  /// Checkpoints need the snapshot-restorable kCounts state; panels outside
  /// it (SWITCH / kFullEvents) get WAL-only durability.
  bool checkpointable_ = false;
  bool striped_ = false;
  /// Total votes committed; drives the kEveryNVotes trigger on the striped
  /// path without any shared lock.
  std::atomic<uint64_t> committed_votes_{0};
  mutable Mutex mutex_{LockRank::kSession, "session"};
  /// Deliberately NOT guarded by mutex_: on the striped path concurrent
  /// committers call metric_.CommitVotesConcurrent under the log's
  /// per-stripe locks with mutex_ unheld; only the serialized commit path
  /// and the publish path touch it under mutex_. The striped/serialized
  /// split (striped_, fixed at construction) is the real guard.
  core::DataQualityMetric metric_;
  uint64_t version_ DQM_GUARDED_BY(mutex_) = 0;
  /// Publish scratch, guarded by mutex_: the publish path refreshes these
  /// in place instead of building a fresh report + snapshot, so publishing
  /// performs no heap allocations in steady state.
  core::DataQualityMetric::QualityReport report_scratch_
      DQM_GUARDED_BY(mutex_);
  Snapshot publish_scratch_ DQM_GUARDED_BY(mutex_);
  const std::vector<std::string> estimator_names_;  // immutable
  SnapshotCell snapshot_;
  /// Per-session×estimator exported gauges (refcounted in the global
  /// registry; released by the destructor). Row order = estimator_names_.
  std::vector<telemetry::Gauge*> quality_gauges_;
  std::vector<telemetry::Gauge*> total_errors_gauges_;
  telemetry::FlightRecorder flight_;
};

}  // namespace dqm::engine

#endif  // DQM_ENGINE_SESSION_H_
