#ifndef DQM_ENGINE_SESSION_H_
#define DQM_ENGINE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dqm.h"
#include "crowd/vote.h"

namespace dqm::engine {

/// One estimator's numbers inside a Snapshot. `name` is the estimator's
/// display name ("SWITCH", "CHAO92", ...) so report consumers can say which
/// estimator produced which number.
struct EstimatorEstimate {
  std::string name;
  double total_errors = 0.0;
  double undetected_errors = 0.0;
  double quality_score = 1.0;
};

/// Immutable point-in-time view of one session's estimates. Snapshots are
/// built under the session lock after each committed batch, so all fields
/// are mutually consistent; readers obtain them without taking any lock.
///
/// A session runs a multi-estimator pipeline (see core::DataQualityMetric):
/// `estimates` has one row per configured estimator, in spec order. The
/// scalar estimate fields mirror row 0 — the primary estimator — so
/// single-method callers keep working unchanged.
struct Snapshot {
  /// Number of committed ingest batches; strictly increases per batch.
  uint64_t version = 0;
  uint64_t num_votes = 0;
  size_t num_items = 0;
  /// VOTING(I) — items whose current majority label is dirty.
  size_t majority_count = 0;
  /// NOMINAL(I) — items with at least one dirty vote.
  size_t nominal_count = 0;
  /// Primary estimator (== estimates[0]).
  double estimated_total_errors = 0.0;
  double estimated_undetected_errors = 0.0;
  /// 1 - undetected/N, clamped to [0, 1].
  double quality_score = 1.0;
  /// Display name of the primary estimator.
  std::string method_name;
  /// One row per configured estimator, in spec order.
  std::vector<EstimatorEstimate> estimates;
};

/// Seqlock-published Snapshot storage: a version word plus the snapshot's
/// numeric fields, all `std::atomic`. The cell is sized at construction for
/// the session's estimator count — the fixed header plus three words per
/// estimator row. Writers (already serialized by the session mutex) bump
/// the sequence odd, store the fields, bump it even; readers copy the
/// fields and retry iff a write was in flight. Every access is an atomic
/// operation, so the protocol is fully visible to ThreadSanitizer — unlike
/// libstdc++'s `std::atomic<std::shared_ptr>`, whose internal lock-bit
/// scheme TSan flags as a race.
///
/// Estimator names are immutable per session and therefore not part of the
/// cell; Load() returns rows with empty names and the session fills them
/// in.
class SnapshotCell {
 public:
  explicit SnapshotCell(size_t num_estimators);

  /// Publishes `snapshot` (which must carry exactly the configured number
  /// of estimator rows). Callers must serialize Store() invocations.
  void Store(const Snapshot& snapshot);

  /// Returns a consistent copy; lock-free (retries only while a concurrent
  /// Store is mid-flight). Row names are left empty.
  Snapshot Load() const;

  /// As Load(), but reuses `snapshot`'s row storage: a reader that polls
  /// with the same Snapshot object performs zero heap allocations per read
  /// after the first. Row names are left untouched.
  void LoadInto(Snapshot& snapshot) const;

 private:
  static constexpr size_t kHeaderWords = 8;
  size_t num_words() const { return kHeaderWords + 3 * num_estimators_; }

  size_t num_estimators_;
  std::atomic<uint64_t> seq_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
};

/// One live estimation stream: a `core::DataQualityMetric` (possibly with
/// several attached estimators) made safe for concurrent use. Writers batch
/// votes through `AddVotes` under an internal mutex; readers poll
/// `snapshot()` lock-free (a seqlock copy), so a hot query path never
/// contends with ingestion.
///
/// Vote order within a batch is preserved; batches from different threads
/// are serialized in lock-acquisition order. Order across concurrent
/// writers is therefore unspecified — order-sensitive methods (SWITCH)
/// should be fed by a single producer per session, tally-based methods
/// (CHAO92, VOTING, NOMINAL) are producer-order independent.
class EstimationSession {
 public:
  EstimationSession(std::string name, size_t num_items,
                    const core::DataQualityMetric::Options& options =
                        core::DataQualityMetric::Options());

  /// Wraps an already-configured pipeline (the engine's spec-based
  /// OpenSession path).
  EstimationSession(std::string name, core::DataQualityMetric metric);

  EstimationSession(const EstimationSession&) = delete;
  EstimationSession& operator=(const EstimationSession&) = delete;

  const std::string& name() const { return name_; }
  size_t num_items() const { return num_items_; }

  /// Appends a batch of votes and publishes a fresh snapshot. The batch is
  /// all-or-nothing: any out-of-range item id rejects the whole batch with
  /// InvalidArgument before a single vote is applied.
  Status AddVotes(std::span<const crowd::VoteEvent> votes);

  /// Single-vote convenience wrapper (one batch of one vote).
  Status AddVote(const crowd::VoteEvent& event) {
    return AddVotes(std::span<const crowd::VoteEvent>(&event, 1));
  }

  /// Current estimates, without blocking on writers.
  Snapshot snapshot() const;

  /// As snapshot(), but reuses `out`'s storage: the estimator-name strings
  /// and row vector are written in place, so a hot reader polling with the
  /// same Snapshot object allocates nothing per query in steady state
  /// (names are carried once per session and string assignment reuses the
  /// receiver's capacity).
  void SnapshotInto(Snapshot& out) const;

  /// Name of the primary estimation method ("SWITCH", "CHAO92", ...).
  std::string_view method_name() const { return estimator_names_.front(); }

  /// Display names of every configured estimator, in spec order.
  const std::vector<std::string>& estimator_names() const {
    return estimator_names_;
  }

 private:
  const std::string name_;
  const size_t num_items_;
  mutable std::mutex mutex_;
  core::DataQualityMetric metric_;  // guarded by mutex_
  uint64_t version_ = 0;            // guarded by mutex_
  /// Publish scratch, guarded by mutex_: AddVotes refreshes these in place
  /// every batch instead of building a fresh report + snapshot, so the
  /// commit path performs no heap allocations in steady state.
  core::DataQualityMetric::QualityReport report_scratch_;
  Snapshot publish_scratch_;
  const std::vector<std::string> estimator_names_;  // immutable
  SnapshotCell snapshot_;
};

}  // namespace dqm::engine

#endif  // DQM_ENGINE_SESSION_H_
