#ifndef DQM_ENGINE_SESSION_H_
#define DQM_ENGINE_SESSION_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>

#include "common/status.h"
#include "core/dqm.h"
#include "crowd/vote.h"

namespace dqm::engine {

/// Immutable point-in-time view of one session's estimate. Snapshots are
/// built under the session lock after each committed batch, so all fields are
/// mutually consistent; readers obtain them without taking any lock.
struct Snapshot {
  /// Number of committed ingest batches; strictly increases per batch.
  uint64_t version = 0;
  uint64_t num_votes = 0;
  size_t num_items = 0;
  /// VOTING(I) — items whose current majority label is dirty.
  size_t majority_count = 0;
  /// NOMINAL(I) — items with at least one dirty vote.
  size_t nominal_count = 0;
  double estimated_total_errors = 0.0;
  double estimated_undetected_errors = 0.0;
  /// 1 - undetected/N, clamped to [0, 1].
  double quality_score = 1.0;
};

/// Seqlock-published Snapshot storage: a version word plus the snapshot's
/// fields, all `std::atomic`. Writers (already serialized by the session
/// mutex) bump the sequence odd, store the fields, bump it even; readers
/// copy the fields and retry iff a write was in flight. Every access is an
/// atomic operation, so the protocol is fully visible to ThreadSanitizer —
/// unlike libstdc++'s `std::atomic<std::shared_ptr>`, whose internal
/// lock-bit scheme TSan flags as a race.
class SnapshotCell {
 public:
  /// Publishes `snapshot`. Callers must serialize Store() invocations.
  void Store(const Snapshot& snapshot);

  /// Returns a consistent copy; lock-free (retries only while a concurrent
  /// Store is mid-flight).
  Snapshot Load() const;

 private:
  static constexpr size_t kWords = 8;
  static std::array<uint64_t, kWords> Encode(const Snapshot& snapshot);
  static Snapshot Decode(const std::array<uint64_t, kWords>& words);

  std::atomic<uint64_t> seq_{0};
  std::array<std::atomic<uint64_t>, kWords> words_{};
};

/// One live estimation stream: a `core::DataQualityMetric` made safe for
/// concurrent use. Writers batch votes through `AddVotes` under an internal
/// mutex; readers poll `snapshot()` lock-free (a seqlock copy), so a hot
/// query path never contends with ingestion.
///
/// Vote order within a batch is preserved; batches from different threads are
/// serialized in lock-acquisition order. Order across concurrent writers is
/// therefore unspecified — order-sensitive methods (SWITCH) should be fed by
/// a single producer per session, tally-based methods (CHAO92, VOTING,
/// NOMINAL) are producer-order independent.
class EstimationSession {
 public:
  EstimationSession(std::string name, size_t num_items,
                    const core::DataQualityMetric::Options& options =
                        core::DataQualityMetric::Options());

  EstimationSession(const EstimationSession&) = delete;
  EstimationSession& operator=(const EstimationSession&) = delete;

  const std::string& name() const { return name_; }
  size_t num_items() const { return num_items_; }

  /// Appends a batch of votes and publishes a fresh snapshot. The batch is
  /// all-or-nothing: any out-of-range item id rejects the whole batch with
  /// InvalidArgument before a single vote is applied.
  Status AddVotes(std::span<const crowd::VoteEvent> votes);

  /// Single-vote convenience wrapper (one batch of one vote).
  Status AddVote(const crowd::VoteEvent& event) {
    return AddVotes(std::span<const crowd::VoteEvent>(&event, 1));
  }

  /// Current estimate, without blocking on writers.
  Snapshot snapshot() const { return snapshot_.Load(); }

  /// Name of the configured estimation method ("SWITCH", "CHAO92", ...).
  std::string_view method_name() const { return method_name_; }

 private:
  const std::string name_;
  const size_t num_items_;
  mutable std::mutex mutex_;
  core::DataQualityMetric metric_;  // guarded by mutex_
  uint64_t version_ = 0;            // guarded by mutex_
  SnapshotCell snapshot_;
  const std::string method_name_;
};

}  // namespace dqm::engine

#endif  // DQM_ENGINE_SESSION_H_
