#include "engine/replication.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "crowd/io.h"
#include "telemetry/metric_names.h"
#include "telemetry/metrics.h"

namespace dqm::engine {

namespace {

namespace fs = std::filesystem;
namespace io = crowd::io;

constexpr char kFenceFile[] = "FENCE";
constexpr char kTmpSuffix[] = ".tmp";

telemetry::Counter& CounterFor(const char* name) {
  return *telemetry::MetricsRegistry::Global().GetCounter(name);
}

Result<uint64_t> ParseDecimalU64(std::string_view text,
                                 const std::string& context) {
  uint64_t value = 0;
  if (text.empty()) {
    return Status::InvalidArgument(
        StrFormat("%s: empty number", context.c_str()));
  }
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(StrFormat(
          "%s: bad number '%.*s'", context.c_str(),
          static_cast<int>(text.size()), text.data()));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::InvalidArgument(StrFormat(
          "%s: number '%.*s' overflows", context.c_str(),
          static_cast<int>(text.size()), text.data()));
    }
    value = value * 10 + digit;
  }
  return value;
}

/// Reads an entire artifact/WAL/checkpoint file through the replication
/// failpoint edges.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  DQM_ASSIGN_OR_RETURN(int fd, io::Open(io::fpn::kReplOpen, path, O_RDONLY));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = Status::IOError(StrFormat(
        "fstat '%s': %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  Status status = bytes.empty()
                      ? Status::OK()
                      : io::ReadExactAt(io::fpn::kReplRead, fd, bytes.data(),
                                        bytes.size(), 0, path);
  ::close(fd);
  if (!status.ok()) return status;
  return bytes;
}

/// tmp + write + fsync + rename + dirsync — the same publish dance the
/// durability layer uses, so a reader never observes a torn artifact.
Status WriteFileAtomicRepl(const std::string& path,
                           std::span<const uint8_t> bytes) {
  const std::string tmp = path + kTmpSuffix;
  DQM_ASSIGN_OR_RETURN(
      int fd, io::Open(io::fpn::kReplOpen, tmp,
                       O_CREAT | O_TRUNC | O_WRONLY, 0644));
  Status status =
      io::WriteAll(io::fpn::kReplWrite, fd, bytes.data(), bytes.size(), tmp);
  if (status.ok()) status = io::Fsync(io::fpn::kReplFsync, fd, tmp);
  ::close(fd);
  if (!status.ok()) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return status;
  }
  DQM_RETURN_NOT_OK(io::Rename(io::fpn::kReplRename, tmp, path));
  return io::FsyncParentDir(io::fpn::kReplDirsync, path);
}

}  // namespace

// --- Artifact naming -------------------------------------------------------

std::string CheckpointArtifactName(uint64_t generation) {
  return StrFormat("ckpt_%020llu.bin",
                   static_cast<unsigned long long>(generation));
}

std::string SegmentArtifactName(uint64_t generation, uint64_t seq) {
  return StrFormat("seg_%020llu_%020llu.bin",
                   static_cast<unsigned long long>(generation),
                   static_cast<unsigned long long>(seq));
}

ArtifactId ParseArtifactName(std::string_view name) {
  ArtifactId id;
  if (name == kManifestArtifact) {
    id.kind = ArtifactId::Kind::kManifest;
    return id;
  }
  auto parse_field = [](std::string_view text, uint64_t& out) {
    Result<uint64_t> value = ParseDecimalU64(text, "artifact");
    if (!value.ok()) return false;
    out = value.value();
    return true;
  };
  constexpr std::string_view kCkptPrefix = "ckpt_";
  constexpr std::string_view kSegPrefix = "seg_";
  constexpr std::string_view kBinSuffix = ".bin";
  if (!name.ends_with(kBinSuffix)) return id;
  std::string_view stem = name.substr(0, name.size() - kBinSuffix.size());
  if (stem.starts_with(kCkptPrefix)) {
    if (parse_field(stem.substr(kCkptPrefix.size()), id.generation)) {
      id.kind = ArtifactId::Kind::kCheckpoint;
    }
    return id;
  }
  if (stem.starts_with(kSegPrefix)) {
    std::string_view fields = stem.substr(kSegPrefix.size());
    size_t sep = fields.find('_');
    if (sep != std::string_view::npos &&
        parse_field(fields.substr(0, sep), id.generation) &&
        parse_field(fields.substr(sep + 1), id.seq)) {
      id.kind = ArtifactId::Kind::kSegment;
    }
    return id;
  }
  return id;
}

// --- LocalDirTransport -----------------------------------------------------

Result<std::unique_ptr<LocalDirTransport>> LocalDirTransport::Open(
    const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError(StrFormat("create transport dir '%s': %s",
                                     dir.c_str(), ec.message().c_str()));
  }
  return std::unique_ptr<LocalDirTransport>(new LocalDirTransport(dir));
}

Status LocalDirTransport::Put(const std::string& name,
                              std::span<const uint8_t> bytes,
                              uint64_t fencing_token) {
  if (name.empty() || name.find('/') != std::string::npos) {
    return Status::InvalidArgument(
        StrFormat("bad artifact name '%s'", name.c_str()));
  }
  DQM_ASSIGN_OR_RETURN(uint64_t fence, Fence());
  if (fencing_token < fence) {
    CounterFor(telemetry::metric_names::kReplicaFenceRejectionsTotal)
        .Increment();
    return Status::FailedPrecondition(StrFormat(
        "put '%s' fenced off: token %llu < fence %llu (a newer primary was "
        "promoted)",
        name.c_str(), static_cast<unsigned long long>(fencing_token),
        static_cast<unsigned long long>(fence)));
  }
  return WriteFileAtomicRepl(dir_ + "/" + name, bytes);
}

Result<std::vector<std::string>> LocalDirTransport::List() {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec);
  if (ec) {
    return Status::IOError(StrFormat("list transport dir '%s': %s",
                                     dir_.c_str(), ec.message().c_str()));
  }
  for (const fs::directory_entry& entry : it) {
    std::string name = entry.path().filename().string();
    if (name == kFenceFile) continue;
    if (name.ends_with(kTmpSuffix)) continue;  // unpublished
    names.push_back(std::move(name));
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::vector<uint8_t>> LocalDirTransport::Get(const std::string& name) {
  return ReadFileBytes(dir_ + "/" + name);
}

Status LocalDirTransport::Delete(const std::string& name) {
  std::error_code ec;
  fs::remove(dir_ + "/" + name, ec);  // missing is fine — delete is for GC
  if (ec) {
    return Status::IOError(StrFormat("delete artifact '%s': %s", name.c_str(),
                                     ec.message().c_str()));
  }
  return Status::OK();
}

Status LocalDirTransport::RaiseFence(uint64_t token) {
  DQM_ASSIGN_OR_RETURN(uint64_t current, Fence());
  if (token <= current) return Status::OK();  // monotonic: never lowers
  std::string text = StrFormat("%llu\n", static_cast<unsigned long long>(token));
  return WriteFileAtomicRepl(
      dir_ + "/" + kFenceFile,
      std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(text.data()),
                               text.size()));
}

Result<uint64_t> LocalDirTransport::Fence() {
  const std::string path = dir_ + "/" + kFenceFile;
  std::error_code ec;
  if (!fs::exists(path, ec)) return 0;  // never fenced
  DQM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  std::string_view text(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size());
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return ParseDecimalU64(text, path);
}

// --- SessionReplicator -----------------------------------------------------

SessionReplicator::SessionReplicator(
    std::shared_ptr<EstimationSession> session,
    std::shared_ptr<ReplicationTransport> transport, uint64_t fencing_token)
    : session_(std::move(session)),
      transport_(std::move(transport)),
      fencing_token_(fencing_token),
      durability_(session_->durability_engine()) {}

Result<std::unique_ptr<SessionReplicator>> SessionReplicator::Start(
    std::shared_ptr<EstimationSession> session,
    std::shared_ptr<ReplicationTransport> transport) {
  if (session == nullptr || transport == nullptr) {
    return Status::InvalidArgument("Start: null session or transport");
  }
  SessionDurability* durability = session->durability_engine();
  if (durability == nullptr) {
    return Status::FailedPrecondition(StrFormat(
        "session '%s' is not durable — replication ships the WAL, so there "
        "must be one",
        session->name().c_str()));
  }
  DQM_ASSIGN_OR_RETURN(
      SessionManifest manifest,
      ReadManifestFile(SessionManifestPath(durability->dir())));

  // A transport already fenced past our token belongs to a newer primary:
  // refuse to start rather than spin on rejected Puts.
  DQM_ASSIGN_OR_RETURN(uint64_t fence, transport->Fence());
  if (fence > manifest.fencing_token) {
    return Status::FailedPrecondition(StrFormat(
        "transport is fenced at %llu, past this session's token %llu — a "
        "standby was promoted; this primary must not ship",
        static_cast<unsigned long long>(fence),
        static_cast<unsigned long long>(manifest.fencing_token)));
  }
  // Claim the fence at our own token so an even older primary bounces.
  DQM_RETURN_NOT_OK(transport->RaiseFence(manifest.fencing_token));
  std::string manifest_text = ManifestContent(manifest);
  DQM_RETURN_NOT_OK(transport->Put(
      kManifestArtifact,
      std::span<const uint8_t>(
          reinterpret_cast<const uint8_t*>(manifest_text.data()),
          manifest_text.size()),
      manifest.fencing_token));

  std::unique_ptr<SessionReplicator> replicator(new SessionReplicator(
      std::move(session), std::move(transport), manifest.fencing_token));

  // Initial sync: checkpoint (if any) + the already-durable WAL tail, so a
  // standby attached mid-life starts from the full durable prefix. The
  // durability reads happen before taking mutex_: they acquire the WAL
  // mutex (kWal), which ranks below kReplication and so must never be
  // taken while mutex_ is held. Anything that becomes durable after these
  // reads is covered by the catch-up event below.
  const uint64_t wal_generation = durability->WalGeneration();
  const uint64_t durable_wal_size = durability->DurableWalSize();
  {
    MutexLock lock(replicator->mutex_);
    DQM_ASSIGN_OR_RETURN(
        replicator->wal_fd_,
        io::Open(io::fpn::kReplOpen, durability->wal_path(), O_RDONLY));
    replicator->shipped_generation_ = wal_generation;
    replicator->shipped_offset_ = crowd::kWalHeaderBytes;
    std::error_code ec;
    if (fs::exists(durability->checkpoint_path(), ec)) {
      DQM_ASSIGN_OR_RETURN(std::vector<uint8_t> ckpt,
                           ReadFileBytes(durability->checkpoint_path()));
      DQM_ASSIGN_OR_RETURN(
          crowd::CheckpointData data,
          crowd::DecodeCheckpoint(std::span<const uint8_t>(ckpt),
                                  durability->checkpoint_path()));
      DQM_RETURN_NOT_OK(replicator->transport_->Put(
          CheckpointArtifactName(data.wal_generation),
          std::span<const uint8_t>(ckpt), replicator->fencing_token_));
      replicator->stats_.checkpoints_shipped++;
      CounterFor(telemetry::metric_names::kReplicaCheckpointsShippedTotal)
          .Increment();
      replicator->shipped_votes_ = data.num_events;
      replicator->shipped_generation_ =
          std::max(replicator->shipped_generation_, data.wal_generation);
    }
    if (replicator->shipped_generation_ == wal_generation) {
      DQM_RETURN_NOT_OK(replicator->ShipSegmentLocked(
          replicator->shipped_generation_, durable_wal_size));
    }
    replicator->stats_.shipped_generation = replicator->shipped_generation_;
    replicator->stats_.shipped_votes = replicator->shipped_votes_;
  }

  // From here every acknowledged fsync / checkpoint ships synchronously.
  SessionReplicator* raw = replicator.get();
  durability->SetShipHook(
      [raw](const SessionDurability::ShipEvent& event) {
        raw->OnShipEvent(event);
      });
  // Cover anything that became durable between the initial sync and the
  // hook install (the ship path is offset-based, so replays are no-ops).
  SessionDurability::ShipEvent catch_up;
  catch_up.kind = SessionDurability::ShipEvent::Kind::kWalDurable;
  catch_up.generation = durability->WalGeneration();
  catch_up.durable_size = durability->DurableWalSize();
  raw->OnShipEvent(catch_up);
  return replicator;
}

SessionReplicator::~SessionReplicator() { Stop(); }

void SessionReplicator::Stop() {
  // SetShipHook serializes with in-flight hook invocations (WAL mutex), so
  // after it returns no OnShipEvent is running. Take our own mutex only
  // afterwards — kReplication ranks above kWal and must not be held across
  // the uninstall.
  durability_->SetShipHook(nullptr);
  MutexLock lock(mutex_);
  if (stopped_) return;
  stopped_ = true;
  if (wal_fd_ >= 0) {
    ::close(wal_fd_);
    wal_fd_ = -1;
  }
}

ReplicationStats SessionReplicator::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void SessionReplicator::OnShipEvent(const SessionDurability::ShipEvent& event) {
  MutexLock lock(mutex_);
  if (stopped_) return;
  Status status = ShipCheckpointLocked(event.generation);
  if (status.ok() && event.generation == shipped_generation_) {
    status = ShipSegmentLocked(event.generation, event.durable_size);
  }
  if (!status.ok()) {
    stats_.ship_errors++;
    CounterFor(telemetry::metric_names::kReplicaShipErrorsTotal).Increment();
    DQM_LOG(Warning) << "replication ship for session '" << session_->name()
                     << "' fell behind (will catch up with the next "
                        "durability event): "
                     << status.message();
  }
  stats_.shipped_generation = shipped_generation_;
  stats_.shipped_votes = shipped_votes_;
  // Unshipped durable bytes — 0 the moment shipping caught up.
  static telemetry::Gauge* lag_bytes = telemetry::MetricsRegistry::Global()
      .GetGauge(telemetry::metric_names::kReplicaLagBytes);
  lag_bytes->Set(event.generation == shipped_generation_ &&
                         event.durable_size > shipped_offset_
                     ? static_cast<double>(event.durable_size - shipped_offset_)
                     : 0.0);
}

Status SessionReplicator::ShipCheckpointLocked(uint64_t generation) {
  if (generation == shipped_generation_) return Status::OK();
  // A checkpoint rename-committed before the WAL reset that bumped the
  // generation, so the file we read is at least `generation`.
  DQM_ASSIGN_OR_RETURN(std::vector<uint8_t> ckpt,
                       ReadFileBytes(durability_->checkpoint_path()));
  DQM_ASSIGN_OR_RETURN(
      crowd::CheckpointData data,
      crowd::DecodeCheckpoint(std::span<const uint8_t>(ckpt),
                              durability_->checkpoint_path()));
  if (data.wal_generation < generation) {
    return Status::Internal(StrFormat(
        "checkpoint file carries generation %llu but the WAL advanced to "
        "%llu",
        static_cast<unsigned long long>(data.wal_generation),
        static_cast<unsigned long long>(generation)));
  }
  DQM_RETURN_NOT_OK(transport_->Put(CheckpointArtifactName(data.wal_generation),
                                    std::span<const uint8_t>(ckpt),
                                    fencing_token_));
  shipped_generation_ = data.wal_generation;
  shipped_offset_ = crowd::kWalHeaderBytes;
  next_seq_ = 1;
  shipped_votes_ = data.num_events;
  stats_.checkpoints_shipped++;
  CounterFor(telemetry::metric_names::kReplicaCheckpointsShippedTotal)
      .Increment();
  GarbageCollectLocked();
  return Status::OK();
}

Status SessionReplicator::ShipSegmentLocked(uint64_t generation,
                                            uint64_t durable_size) {
  if (durable_size <= shipped_offset_) return Status::OK();  // nothing new
  crowd::WalSegment segment;
  segment.generation = generation;
  segment.seq = next_seq_;
  segment.start_offset = shipped_offset_;
  segment.fencing_token = fencing_token_;
  segment.payload.resize(durable_size - shipped_offset_);
  DQM_RETURN_NOT_OK(io::ReadExactAt(io::fpn::kReplRead, wal_fd_,
                                    segment.payload.data(),
                                    segment.payload.size(), shipped_offset_,
                                    durability_->wal_path()));
  // A segment must scan clean end to end before it ships: the bytes below
  // durable_size are fsync-acknowledged, so anything else is local
  // corruption — better caught here than replicated.
  DQM_ASSIGN_OR_RETURN(
      crowd::WalScanResult scan,
      crowd::ScanWalRecords(
          std::span<const uint8_t>(segment.payload), session_->num_items(),
          [](std::span<const crowd::VoteEvent>) { return Status::OK(); },
          scan_scratch_));
  if (scan.torn || scan.clean_end != segment.payload.size()) {
    return Status::Internal(StrFormat(
        "durable WAL range [%llu, %llu) of '%s' does not scan clean — "
        "refusing to ship it",
        static_cast<unsigned long long>(shipped_offset_),
        static_cast<unsigned long long>(durable_size),
        durability_->wal_path().c_str()));
  }
  segment.cum_votes = shipped_votes_ + scan.votes;
  std::vector<uint8_t> encoded;
  crowd::EncodeWalSegment(segment, encoded);
  DQM_RETURN_NOT_OK(transport_->Put(SegmentArtifactName(generation, next_seq_),
                                    std::span<const uint8_t>(encoded),
                                    fencing_token_));
  shipped_offset_ = durable_size;
  shipped_votes_ = segment.cum_votes;
  next_seq_++;
  stats_.segments_shipped++;
  CounterFor(telemetry::metric_names::kReplicaSegmentsShippedTotal)
      .Increment();
  return Status::OK();
}

void SessionReplicator::GarbageCollectLocked() {
  Result<std::vector<std::string>> names = transport_->List();
  if (!names.ok()) return;  // best effort
  for (const std::string& name : names.value()) {
    ArtifactId id = ParseArtifactName(name);
    bool stale = (id.kind == ArtifactId::Kind::kCheckpoint ||
                  id.kind == ArtifactId::Kind::kSegment) &&
                 id.generation < shipped_generation_;
    if (stale) (void)transport_->Delete(name);
  }
}

// --- StandbyApplier --------------------------------------------------------

StandbyApplier::StandbyApplier(DqmEngine& engine,
                               std::shared_ptr<ReplicationTransport> transport,
                               Options options, SessionManifest manifest)
    : engine_(engine),
      transport_(std::move(transport)),
      options_(std::move(options)),
      manifest_(std::move(manifest)) {
  telemetry::MetricsRegistry::Global().AcquireGauge(
      telemetry::metric_names::kReplicaLagVotes,
      {{"session", manifest_.name}});
}

StandbyApplier::~StandbyApplier() {
  telemetry::MetricsRegistry::Global().ReleaseGauge(
      telemetry::metric_names::kReplicaLagVotes,
      {{"session", manifest_.name}});
}

Result<std::unique_ptr<StandbyApplier>> StandbyApplier::Open(
    DqmEngine& engine, std::shared_ptr<ReplicationTransport> transport,
    const Options& options) {
  if (transport == nullptr) {
    return Status::InvalidArgument("Open: null transport");
  }
  DQM_ASSIGN_OR_RETURN(std::vector<uint8_t> manifest_bytes,
                       transport->Get(kManifestArtifact));
  DQM_ASSIGN_OR_RETURN(
      SessionManifest manifest,
      ParseManifestContent(
          std::string_view(reinterpret_cast<const char*>(manifest_bytes.data()),
                           manifest_bytes.size()),
          "manifest artifact"));
  if (manifest.specs.empty()) {
    return Status::FailedPrecondition(StrFormat(
        "manifest for '%s' records no estimator specs — only spec-configured "
        "sessions can be rebuilt on a standby",
        manifest.name.c_str()));
  }
  std::unique_ptr<StandbyApplier> applier(new StandbyApplier(
      engine, std::move(transport), options, std::move(manifest)));
  // First Poll opens the warm session (from the best shipped checkpoint or
  // from scratch) and applies everything already shipped.
  DQM_RETURN_NOT_OK(applier->Poll());
  return applier;
}

SessionOptions StandbyApplier::BuildSessionOptions() const {
  SessionOptions options;
  Result<SessionOptions> parsed = ParsePublishCadenceSpec(manifest_.cadence);
  if (parsed.ok()) options = parsed.value();
  options.publish_every_votes = manifest_.publish_every_votes;
  // Pin the primary's RESOLVED stripe layout (0 = serialized path → 1;
  // 0 in SessionOptions would re-run auto-resolution on this machine).
  options.ingest_stripes =
      manifest_.ingest_stripes == 0 ? 1 : manifest_.ingest_stripes;
  options.durability_dir = options_.durability_dir;
  options.wal_group_commit_votes = manifest_.wal_group_commit_votes;
  options.wal_group_commit_ms = manifest_.wal_group_commit_ms;
  options.checkpoint_every_votes = manifest_.checkpoint_every_votes;
  options.durability_failure_policy = manifest_.failure_policy;
  return options;
}

Status StandbyApplier::ResyncFromCheckpoint(uint64_t generation,
                                            std::span<const uint8_t> ckpt) {
  const bool rebuilding = session_ != nullptr;
  if (rebuilding) {
    (void)engine_.CloseSession(manifest_.name);
    session_.reset();
  }
  if (!options_.durability_dir.empty()) {
    // Standby state is entirely derived from the transport, so the local
    // session directory is disposable — wipe it rather than trip
    // OpenSession's already-holds-state guard.
    std::error_code ec;
    fs::remove_all(
        options_.durability_dir + "/" + PercentEncode(manifest_.name), ec);
  }
  DQM_ASSIGN_OR_RETURN(
      std::shared_ptr<EstimationSession> session,
      engine_.OpenSession(
          manifest_.name, manifest_.num_items,
          std::span<const std::string>(manifest_.specs),
          BuildSessionOptions()));
  session_ = std::move(session);
  applied_votes_ = 0;
  if (!ckpt.empty()) {
    DQM_ASSIGN_OR_RETURN(
        crowd::CheckpointData data,
        crowd::DecodeCheckpoint(ckpt, CheckpointArtifactName(generation)));
    DQM_RETURN_NOT_OK(crowd::EmitCheckpointVotes(
        data, [this](std::span<const crowd::VoteEvent> votes) {
          return session_->AddVotes(votes);
        }));
    if (session_->committed_votes() != data.num_events) {
      return Status::Internal(StrFormat(
          "checkpoint restore on standby '%s' committed %llu votes, "
          "checkpoint says %llu",
          manifest_.name.c_str(),
          static_cast<unsigned long long>(session_->committed_votes()),
          static_cast<unsigned long long>(data.num_events)));
    }
    applied_votes_ = data.num_events;
    generation = data.wal_generation;
  }
  applied_generation_ = generation;
  next_seq_ = 1;
  expected_offset_ = crowd::kWalHeaderBytes;
  divergent_ = false;
  opened_ = true;
  if (rebuilding) {
    resyncs_++;
    CounterFor(telemetry::metric_names::kReplicaResyncsTotal).Increment();
  }
  session_->Publish();
  return Status::OK();
}

void StandbyApplier::NoteDivergence(const std::string& why) {
  if (divergent_) return;
  divergent_ = true;
  divergences_++;
  CounterFor(telemetry::metric_names::kReplicaDivergencesTotal).Increment();
  DQM_LOG(Warning) << "standby '" << manifest_.name
                   << "' diverged from the shipped stream (" << why
                   << ") — holding applies until a checkpoint resync";
}

Status StandbyApplier::ApplySegment(const crowd::WalSegment& segment) {
  if (segment.generation != applied_generation_) {
    NoteDivergence(StrFormat(
        "segment content says generation %llu, expected %llu",
        static_cast<unsigned long long>(segment.generation),
        static_cast<unsigned long long>(applied_generation_)));
    return Status::OK();
  }
  if (segment.seq != next_seq_) {
    NoteDivergence(StrFormat("segment seq %llu, expected %llu",
                             static_cast<unsigned long long>(segment.seq),
                             static_cast<unsigned long long>(next_seq_)));
    return Status::OK();
  }
  if (segment.start_offset != expected_offset_) {
    NoteDivergence(StrFormat(
        "segment starts at WAL offset %llu, expected %llu (overlap or gap)",
        static_cast<unsigned long long>(segment.start_offset),
        static_cast<unsigned long long>(expected_offset_)));
    return Status::OK();
  }
  // Validate end to end BEFORE applying a single vote: a shipped segment is
  // applied whole or not at all — a torn tail means a torn artifact, never
  // a silently shortened one.
  DQM_ASSIGN_OR_RETURN(
      crowd::WalScanResult precheck,
      crowd::ScanWalRecords(
          std::span<const uint8_t>(segment.payload), manifest_.num_items,
          [](std::span<const crowd::VoteEvent>) { return Status::OK(); },
          scan_scratch_));
  if (precheck.torn || precheck.clean_end != segment.payload.size()) {
    NoteDivergence(StrFormat(
        "segment %llu payload is torn after %llu clean bytes of %llu",
        static_cast<unsigned long long>(segment.seq),
        static_cast<unsigned long long>(precheck.clean_end),
        static_cast<unsigned long long>(segment.payload.size())));
    return Status::OK();
  }
  if (applied_votes_ + precheck.votes != segment.cum_votes) {
    NoteDivergence(StrFormat(
        "segment %llu claims cumulative %llu votes, replica computes %llu",
        static_cast<unsigned long long>(segment.seq),
        static_cast<unsigned long long>(segment.cum_votes),
        static_cast<unsigned long long>(applied_votes_ + precheck.votes)));
    return Status::OK();
  }
  DQM_ASSIGN_OR_RETURN(
      crowd::WalScanResult applied,
      crowd::ScanWalRecords(
          std::span<const uint8_t>(segment.payload), manifest_.num_items,
          [this](std::span<const crowd::VoteEvent> votes) {
            return session_->AddVotes(votes);
          },
          scan_scratch_));
  (void)applied;
  applied_votes_ = segment.cum_votes;
  expected_offset_ = segment.start_offset + segment.payload.size();
  next_seq_++;
  max_token_seen_ = std::max(max_token_seen_, segment.fencing_token);
  CounterFor(telemetry::metric_names::kReplicaSegmentsAppliedTotal)
      .Increment();
  return Status::OK();
}

Status StandbyApplier::Poll() {
  if (promoted_) {
    return Status::FailedPrecondition(StrFormat(
        "standby '%s' was promoted — it is a primary now, stop polling",
        manifest_.name.c_str()));
  }
  DQM_ASSIGN_OR_RETURN(std::vector<std::string> names, transport_->List());
  uint64_t best_ckpt = 0;
  struct SegmentRef {
    uint64_t generation;
    uint64_t seq;
    const std::string* name;
  };
  std::vector<SegmentRef> segments;
  for (const std::string& name : names) {
    ArtifactId id = ParseArtifactName(name);
    if (id.kind == ArtifactId::Kind::kCheckpoint) {
      best_ckpt = std::max(best_ckpt, id.generation);
    } else if (id.kind == ArtifactId::Kind::kSegment) {
      segments.push_back({id.generation, id.seq, &name});
    }
  }
  // (Re)build the warm session whenever a newer checkpoint appeared, on
  // first poll, or to heal a divergence (replaying the full shipped stream
  // from the best checkpoint is the recovery path — identical to how a
  // fresh standby would come up).
  if (!opened_ || divergent_ || best_ckpt > applied_generation_) {
    if (best_ckpt > 0) {
      DQM_ASSIGN_OR_RETURN(std::vector<uint8_t> ckpt,
                           transport_->Get(CheckpointArtifactName(best_ckpt)));
      DQM_RETURN_NOT_OK(
          ResyncFromCheckpoint(best_ckpt, std::span<const uint8_t>(ckpt)));
    } else {
      // No checkpoint shipped yet: the stream starts at generation 1 with
      // an empty session.
      DQM_RETURN_NOT_OK(ResyncFromCheckpoint(1, {}));
    }
  }
  std::sort(segments.begin(), segments.end(),
            [](const SegmentRef& a, const SegmentRef& b) {
              return a.generation != b.generation ? a.generation < b.generation
                                                  : a.seq < b.seq;
            });
  uint64_t votes_before = applied_votes_;
  for (const SegmentRef& ref : segments) {
    if (divergent_) break;
    if (ref.generation < applied_generation_) continue;  // pre-GC leftovers
    if (ref.generation > applied_generation_) {
      // Segments from a generation whose checkpoint has not arrived yet —
      // nothing to anchor them to; wait for the checkpoint.
      break;
    }
    if (ref.seq < next_seq_) continue;  // duplicate delivery — idempotent
    if (ref.seq > next_seq_) {
      NoteDivergence(StrFormat("gap: next shipped segment is %llu, expected "
                               "%llu",
                               static_cast<unsigned long long>(ref.seq),
                               static_cast<unsigned long long>(next_seq_)));
      break;
    }
    DQM_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, transport_->Get(*ref.name));
    Result<crowd::WalSegment> segment =
        crowd::DecodeWalSegment(std::span<const uint8_t>(bytes), *ref.name);
    if (!segment.ok()) {
      // Torn or corrupt artifact — divergence, not a hard error: the
      // primary (or a re-ship) can still heal it.
      NoteDivergence(segment.status().message());
      break;
    }
    max_cum_votes_seen_ =
        std::max(max_cum_votes_seen_, segment.value().cum_votes);
    DQM_RETURN_NOT_OK(ApplySegment(segment.value()));
  }
  max_cum_votes_seen_ = std::max(max_cum_votes_seen_, applied_votes_);
  telemetry::MetricsRegistry::Global()
      .AcquireGauge(telemetry::metric_names::kReplicaLagVotes,
                    {{"session", manifest_.name}})
      ->Set(static_cast<double>(max_cum_votes_seen_ - applied_votes_));
  telemetry::MetricsRegistry::Global().ReleaseGauge(
      telemetry::metric_names::kReplicaLagVotes, {{"session", manifest_.name}});
  if (applied_votes_ != votes_before) session_->Publish();
  return Status::OK();
}

Result<StandbyApplier::PromotionReport> StandbyApplier::Promote() {
  if (promoted_) {
    return Status::FailedPrecondition(
        StrFormat("standby '%s' is already promoted", manifest_.name.c_str()));
  }
  // Final drain: everything the transport holds right now is part of the
  // durable prefix we take over. A divergence here is fine — we promote the
  // longest clean prefix, which is exactly the durable-prefix guarantee.
  DQM_RETURN_NOT_OK(Poll());
  DQM_ASSIGN_OR_RETURN(uint64_t fence, transport_->Fence());
  uint64_t new_token =
      std::max({fence, max_token_seen_, manifest_.fencing_token}) + 1;
  DQM_RETURN_NOT_OK(transport_->RaiseFence(new_token));
  if (SessionDurability* durability = session_->durability_engine()) {
    // Persist the new epoch: if this promoted primary later replicates (or
    // is itself recovered), it ships with a token that outranks the old
    // primary's forever.
    const std::string path = SessionManifestPath(durability->dir());
    DQM_ASSIGN_OR_RETURN(SessionManifest manifest, ReadManifestFile(path));
    manifest.fencing_token = new_token;
    DQM_RETURN_NOT_OK(WriteManifestFile(path, manifest));
  }
  manifest_.fencing_token = new_token;
  promoted_ = true;
  CounterFor(telemetry::metric_names::kReplicaPromotionsTotal).Increment();
  session_->Publish();
  DQM_LOG(Info) << "standby '" << manifest_.name
                << "' promoted: fencing token " << new_token << ", "
                << applied_votes_ << " votes applied at generation "
                << applied_generation_;
  PromotionReport report;
  report.fencing_token = new_token;
  report.applied_votes = applied_votes_;
  report.generation = applied_generation_;
  return report;
}

}  // namespace dqm::engine
