#ifndef DQM_ENGINE_ENGINE_H_
#define DQM_ENGINE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "core/dqm.h"
#include "engine/session.h"

namespace dqm::engine {

/// Concurrent registry of named estimation sessions — the serving layer for
/// monitoring many datasets at once.
///
/// The registry is sharded by session-name hash: opening, closing, and
/// looking up sessions only takes the owning shard's mutex, and every
/// per-vote operation happens on the session's own lock *after* the shard
/// lock is released. Ingesting into one dataset therefore never blocks
/// queries or ingestion on any other, and lookups on different shards never
/// contend at all.
///
/// Typical use:
///
///     dqm::engine::DqmEngine engine;
///     engine.OpenSession("restaurants", num_pairs);
///     engine.Ingest("restaurants", batch);        // from any thread
///     Snapshot s = engine.Query("restaurants").value();
///     // s.estimated_total_errors, s.quality_score, ...
class DqmEngine {
 public:
  struct Options {
    /// Number of registry shards. More shards = less lock contention on
    /// open/lookup with many concurrent datasets; must be positive.
    size_t num_shards = 16;
  };

  DqmEngine() : DqmEngine(Options()) {}
  explicit DqmEngine(const Options& options);

  DqmEngine(const DqmEngine&) = delete;
  DqmEngine& operator=(const DqmEngine&) = delete;

  /// Creates a session for a universe of `num_items` items. Fails with
  /// AlreadyExists when the name is taken and InvalidArgument for an empty
  /// name.
  Result<std::shared_ptr<EstimationSession>> OpenSession(
      const std::string& name, size_t num_items,
      const core::DataQualityMetric::Options& metric_options =
          core::DataQualityMetric::Options());

  /// As above, but configured by registry spec strings: the session runs
  /// every listed estimator on the one vote stream and snapshots carry one
  /// row per spec (spec order; the first spec is the primary estimator).
  /// Invalid specs are reported as InvalidArgument / NotFound before the
  /// session is created.
  ///
  /// Spec-opened sessions use the serving retention default,
  /// crowd::RetentionPolicy::kCounts: the session's log keeps the compacted
  /// per-(worker, item) count matrix rather than every raw vote, so
  /// steady-state memory is O(#distinct pairs) regardless of how many votes
  /// stream through. (The legacy Options overload keeps kFullEvents unless
  /// Options::retention says otherwise.)
  Result<std::shared_ptr<EstimationSession>> OpenSession(
      const std::string& name, size_t num_items,
      std::span<const std::string> specs);

  /// As above with explicit serving knobs: publish cadence and ingest
  /// striping (see SessionOptions). Producer-order-independent panels
  /// (no SWITCH) get the striped multi-producer commit path; with a
  /// coalesced cadence (kEveryNVotes / kManual) many writer threads can
  /// ingest into the one session while a single publisher runs the
  /// estimator pipeline.
  ///
  /// When SessionOptions::durability_dir is set this also creates the
  /// session's durability directory (`<dir>/<percent-encoded name>/` with
  /// manifest + WAL) and every accepted batch is write-ahead logged before
  /// it is applied. FailedPrecondition when that directory already holds
  /// state — an existing durable session must be re-opened through
  /// RecoverSessions, never overwritten by OpenSession.
  Result<std::shared_ptr<EstimationSession>> OpenSession(
      const std::string& name, size_t num_items,
      std::span<const std::string> specs,
      const SessionOptions& session_options);

  /// One session rebuilt by RecoverSessions.
  struct RecoveredSession {
    std::string name;
    uint64_t num_items = 0;
    /// Checkpoint-restored plus WAL-replayed votes.
    uint64_t votes_restored = 0;
    /// Trailing WAL records dropped (and truncated away) as torn.
    uint64_t torn_records = 0;
    bool had_checkpoint = false;
    /// True when the session came up serving but with durability already
    /// degraded to volatile mode (or its WAL sealed) — it recovered, but it
    /// is NOT crash-safe until a checkpoint re-arms it. Operators triaging
    /// a keep-going recovery need this distinction surfaced, not buried in
    /// logs.
    bool degraded = false;
  };

  /// Scans `root` (a SessionOptions::durability_dir) and re-opens every
  /// durable session found under it: reads each subdirectory's manifest,
  /// rebuilds the exact serving configuration (estimator panel, cadence,
  /// recorded stripe layout), restores the latest checkpoint, replays the
  /// WAL tail (truncating a torn final record), publishes the recovered
  /// estimates, and registers the session under its original name.
  /// Returns per-session reports sorted by name. Subdirectories without a
  /// manifest (a crash inside OpenSession before the manifest committed)
  /// are skipped with a warning; a corrupt checkpoint or unreadable WAL
  /// fails the whole call — silent data loss is not an option here.
  Result<std::vector<RecoveredSession>> RecoverSessions(
      const std::string& root);

  /// One subdirectory's fate under RecoverSessionsKeepGoing.
  struct SessionRecoveryOutcome {
    enum class State : uint8_t {
      /// Session rebuilt and registered; `report` is valid.
      kRecovered,
      /// No readable manifest — a crash inside OpenSession before the
      /// manifest committed. Nothing durable can live here; not an error.
      kSkipped,
      /// Recovery failed (corrupt checkpoint, unreadable WAL, name
      /// collision, ...); `detail` carries the failure message.
      kFailed,
    };
    /// Durability subdirectory this outcome describes.
    std::string dir;
    /// Session name from the manifest; empty when the manifest itself was
    /// unreadable (kSkipped, or a kFailed before the manifest parsed).
    std::string name;
    State state = State::kFailed;
    /// Why the session was skipped or failed; empty on kRecovered.
    std::string detail;
    /// Valid only when state == kRecovered.
    RecoveredSession report;
  };

  /// Like RecoverSessions, but a broken session directory does not abort
  /// the scan: every subdirectory gets an outcome row and the healthy
  /// sessions still come up. This is the operator-facing triage mode
  /// (`dqm_engine_cli --recover --recover_keep_going`) — the strict
  /// variant remains the right default for programmatic recovery, where
  /// partially coming up must not masquerade as success. Outcomes are
  /// sorted by directory; this call itself only fails when `root` cannot
  /// be scanned at all.
  Result<std::vector<SessionRecoveryOutcome>> RecoverSessionsKeepGoing(
      const std::string& root);

  /// Looks up an open session (NotFound otherwise). The returned handle
  /// stays valid after CloseSession — closing only unregisters the name.
  Result<std::shared_ptr<EstimationSession>> GetSession(
      const std::string& name) const;

  /// Appends a batch of votes to the named session.
  Status Ingest(const std::string& name,
                std::span<const crowd::VoteEvent> votes);

  /// Publishes a fresh snapshot of the named session — the explicit flush
  /// for sessions opened with a kManual / kEveryNVotes cadence.
  Status Publish(const std::string& name);

  /// Current estimate of the named session. The by-name lookup takes the
  /// shard lock; the snapshot read itself is lock-free. Hot readers should
  /// hold a GetSession handle and call `snapshot()` on it directly to skip
  /// the lookup entirely.
  Result<Snapshot> Query(const std::string& name) const;

  /// Allocation-free form of Query for polling readers: refreshes `out` in
  /// place (see EstimationSession::SnapshotInto). NotFound when no session
  /// carries `name`; `out` is untouched on error.
  Status QueryInto(const std::string& name, Snapshot& out) const;

  /// Snapshots of every open session, sorted by name — the one-call sweep
  /// report/monitoring surfaces use. Each snapshot is individually
  /// consistent (seqlock read); the set as a whole is not a cross-session
  /// transaction, and sessions opened or closed concurrently may or may not
  /// appear.
  std::vector<std::pair<std::string, Snapshot>> QueryAll() const;

  /// Unregisters a session. In-flight operations holding its handle finish
  /// safely; NotFound when no such session is open.
  Status CloseSession(const std::string& name);

  /// Planned movement of a session to another engine: flushes the source's
  /// WAL, exports its compacted state (quiescing ingest for the cut),
  /// rebuilds an identical session on `target` (same specs and serving
  /// options; `target_durability_root` gives the target its own durable
  /// home, "" = in-memory), verifies the restored vote count, publishes,
  /// and closes the source registration. The caller must stop routing
  /// traffic to the source before migrating — votes ingested after the
  /// export cut would stay behind. FailedPrecondition for panels whose
  /// state cannot be rebuilt from compacted counts (SWITCH / full-event
  /// retention) and for sessions opened without spec strings; on any
  /// failure the source stays registered and serving, and a half-built
  /// target session is closed.
  Status MigrateSession(const std::string& name, DqmEngine& target,
                        const std::string& target_durability_root = "");

  size_t num_sessions() const;

  /// Names of all open sessions, sorted.
  std::vector<std::string> SessionNames() const;

  /// Refreshes the engine-level exported gauges — `dqm_engine_sessions_open`
  /// and the `dqm_engine_retained_bytes` roll-up — from the current session
  /// set. Each open session is counted exactly once even while sessions
  /// churn concurrently: the walk collects handles shard by shard under the
  /// shard locks (a session lives in exactly one shard, keyed by its name),
  /// then sums RetainedBytes with no registry lock held, and the gauges are
  /// Set (not accumulated) so a session closed mid-walk can at worst
  /// contribute one final point-in-time value — never a double count, and
  /// never a residue after it is gone: once every session is closed the
  /// next refresh returns both gauges to 0. Call it whenever a fresh
  /// reading is wanted (the CLI calls it before every metrics dump).
  void RefreshTelemetry() const;

 private:
  struct Shard {
    /// kEngineShard is the lowest rank in the lock hierarchy: a shard
    /// critical section may (via a session destroyed by CloseSession's
    /// erase) reach into the session/telemetry ranks, but nothing may take
    /// a shard lock while holding any other engine lock.
    mutable Mutex mutex{LockRank::kEngineShard, "engine-shard"};
    std::unordered_map<std::string, std::shared_ptr<EstimationSession>>
        sessions DQM_GUARDED_BY(mutex);
  };

  Shard& ShardFor(std::string_view name) const;

  /// Cheap empty-name / duplicate-name rejection, taken before any
  /// O(num_items) construction.
  Status PrecheckName(const std::string& name) const;

  /// Shared tail of the OpenSession overloads: name pre-check, session
  /// construction outside the shard lock, racing-open resolution.
  Result<std::shared_ptr<EstimationSession>> InsertSession(
      const std::string& name,
      const std::function<std::shared_ptr<EstimationSession>()>& make_session);

  /// Rebuilds and registers the session living in durability directory
  /// `dir` from its already-parsed manifest. Shared by the strict and
  /// keep-going recovery scans.
  Result<RecoveredSession> RecoverSessionDir(const std::string& dir,
                                             const std::string& root,
                                             SessionManifest manifest);

  /// Lists the session subdirectories of a durability root, sorted.
  static Result<std::vector<std::string>> ListSessionDirs(
      const std::string& root);

  size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace dqm::engine

#endif  // DQM_ENGINE_ENGINE_H_
