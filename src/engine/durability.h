#ifndef DQM_ENGINE_DURABILITY_H_
#define DQM_ENGINE_DURABILITY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "crowd/vote.h"
#include "crowd/wal.h"
#include "telemetry/metrics.h"

namespace dqm::engine {

/// What a session does when its WAL seals (an I/O failure survived the
/// retry budget): fail-stop rejects every later batch until a checkpoint
/// reset; degrade-to-volatile keeps committing in memory, loudly flagging
/// itself (snapshots, dqm_sessions_degraded) and counting every vote acked
/// without a durable record, then re-arms at the next successful
/// checkpoint reset.
enum class DurabilityFailurePolicy : uint8_t {
  kFailStop = 0,
  kDegradeToVolatile = 1,
};

/// Canonical spellings, as accepted by --durability_failure_policy and the
/// manifest: "fail_stop" | "degrade_to_volatile".
const char* DurabilityFailurePolicyName(DurabilityFailurePolicy policy);
Result<DurabilityFailurePolicy> ParseDurabilityFailurePolicy(
    std::string_view text);

/// Failpoint names for the durability edges owned by this layer (the
/// WAL/checkpoint edges live in crowd/io.h).
namespace fpn {
inline constexpr char kManifestOpen[] = "dqm.manifest.open";
inline constexpr char kManifestRead[] = "dqm.manifest.read";
inline constexpr char kManifestWrite[] = "dqm.manifest.write";
inline constexpr char kManifestFsync[] = "dqm.manifest.fsync";
inline constexpr char kManifestRename[] = "dqm.manifest.rename";
/// fsync of a directory fd (session dir dirents; manifest parent).
inline constexpr char kDirSync[] = "dqm.durability.dirsync";
/// Evaluated by the group-commit flusher thread at each wake: error and
/// return actions skip that flush cycle, delay stalls it (lock held).
inline constexpr char kFlusherWake[] = "dqm.wal.flusher";
}  // namespace fpn

/// Per-session durability knobs (resolved from SessionOptions by the
/// engine; `dir` is this session's own directory, not the engine root).
struct DurabilityOptions {
  std::string dir;
  /// Session name, for the session=... label on the checkpoint-size gauge.
  std::string session_name;
  /// fsync the WAL whenever at least this many votes accumulated since the
  /// last sync (clamped to >= 1; 1 = fsync every batch).
  uint64_t group_commit_votes = 256;
  /// Additionally fsync at most this many milliseconds after a vote was
  /// buffered (0 = no timed flusher): bounds the durability lag of a
  /// trickle workload that never fills a vote-count group.
  uint64_t group_commit_ms = 0;
  /// Checkpoint whenever the session's committed total crosses a multiple
  /// of this (0 = never; recovery then replays the whole WAL).
  uint64_t checkpoint_every_votes = 0;
  /// What to do when the WAL seals; see DurabilityFailurePolicy.
  DurabilityFailurePolicy failure_policy = DurabilityFailurePolicy::kFailStop;
};

/// Everything needed to rebuild a session's configuration at recovery,
/// persisted as a key=value text file (`MANIFEST`) in the session dir.
/// Holds primitives only — the engine re-derives SessionOptions from it —
/// so this header stays independent of engine/session.h.
struct SessionManifest {
  std::string name;
  uint64_t num_items = 0;
  std::vector<std::string> specs;
  /// ParsePublishCadenceSpec spelling ("every_batch" | "manual" |
  /// "every_n_votes:N").
  std::string cadence = "every_batch";
  /// The RESOLVED stripe count the live session used (log.num_stripes();
  /// 0 = serialized path) — recorded so recovery rebuilds the same stripe
  /// layout deterministically instead of re-deriving it from the hardware
  /// it happens to recover on.
  uint64_t ingest_stripes = 0;
  uint64_t publish_every_votes = 4096;
  uint64_t wal_group_commit_votes = 256;
  uint64_t wal_group_commit_ms = 0;
  uint64_t checkpoint_every_votes = 0;
  /// Persisted as its canonical spelling; manifests from before this key
  /// existed recover as fail_stop (the old behavior).
  DurabilityFailurePolicy failure_policy = DurabilityFailurePolicy::kFailStop;
  /// Monotonic replication fencing token. A primary stamps every shipped
  /// artifact with its token; promoting a standby raises the transport
  /// fence past the old primary's token, so a zombie primary's late pushes
  /// are rejected (no split-brain double-apply). Manifests from before this
  /// key existed recover as epoch 1.
  uint64_t fencing_token = 1;
};

/// Escapes a session name into a filesystem-safe token ('/' and friends
/// percent-encoded); decodes exactly.
std::string PercentEncode(std::string_view raw);
Result<std::string> PercentDecode(std::string_view encoded);

/// Manifest (de)serialization: key=value lines, written tmp+rename+fsync.
Status WriteManifestFile(const std::string& path, const SessionManifest& m);
Result<SessionManifest> ReadManifestFile(const std::string& path);

/// Parses manifest content already in memory (the replication path receives
/// manifests as shipped artifact bytes). `context` names the source for
/// error messages; ReadManifestFile is this plus the file read.
Result<SessionManifest> ParseManifestContent(std::string_view content,
                                             const std::string& context);

/// Serializes `m` to the exact key=value text WriteManifestFile persists —
/// what a primary ships as the manifest artifact.
std::string ManifestContent(const SessionManifest& m);

/// Path of the manifest inside a session directory — what
/// DqmEngine::RecoverSessions probes each subdirectory for.
std::string SessionManifestPath(const std::string& session_dir);

/// One session's durability engine: the WAL group-commit policy, the
/// checkpoint protocol, and recovery. Owns the session directory layout
///
///   <dir>/MANIFEST         session configuration (written once at create)
///   <dir>/wal.log          crowd::VoteWal (tail since the last checkpoint)
///   <dir>/checkpoint.bin   crowd checkpoint file (latest committed one)
///
/// ## Commit protocol (see EstimationSession::AddVotes)
///
/// The session appends every accepted batch here BEFORE applying it:
/// AppendBatch buffers the record under the WAL mutex and write(2)+fsyncs
/// when the group-commit cadence says so — an IOError rejects the batch
/// before a single vote reaches the pipeline, keeping the WAL a superset
/// of the applied state. A write/fsync failure additionally SEALS the WAL
/// (see crowd::VoteWal): the file is cut back to the last fsync'd record
/// and every later AppendBatch/Flush fails until a checkpoint commit
/// resets the log — fail-stop durability, never a silently lossy log.
/// After applying, the session calls NoteApplied,
/// which is what lets a checkpoint quiesce: CommitCheckpoint blocks new
/// appends (WAL mutex), drains appended-but-unapplied batches
/// (in_flight == 0), snapshots the log via the caller's build callback,
/// rename-commits the checkpoint file carrying generation G+1, then
/// resets the WAL to G+1. A crash between those last two steps is healed
/// by the generation compare in Recover.
///
/// Lock order: session (200) -> WAL (250) -> stripes (300); the checkpoint
/// build callback pauses stripes while holding both outer locks.
class SessionDurability {
 public:
  /// Kill points, in commit order, for crash-recovery tests: the hook runs
  /// with the WAL mutex held immediately AFTER the named step completed.
  enum class Phase {
    kAppend,           // batch buffered (user-space only — dies with us)
    kFsync,            // group-commit fsync returned
    kCheckpointWrite,  // checkpoint file rename-committed, WAL not yet reset
    kWalReset,         // WAL truncated to the new generation
  };

  /// Creates a FRESH session directory (mkdir -p), writes the manifest, and
  /// opens an empty WAL. FailedPrecondition when the directory already
  /// holds state — recovering an existing session must go through
  /// DqmEngine::RecoverSessions, not OpenSession.
  static Result<std::unique_ptr<SessionDurability>> Create(
      const DurabilityOptions& options, const SessionManifest& manifest);

  /// Attaches to an EXISTING session directory for recovery (the caller has
  /// already read the manifest). Opens the WAL but replays nothing until
  /// Recover.
  static Result<std::unique_ptr<SessionDurability>> Attach(
      const DurabilityOptions& options);

  /// Stops the timed flusher and flushes+fsyncs any buffered records
  /// (best-effort; failures are logged).
  ~SessionDurability();

  SessionDurability(const SessionDurability&) = delete;
  SessionDurability& operator=(const SessionDurability&) = delete;

  /// Logs one accepted batch: buffers the record, marks it in-flight, and
  /// runs the group-commit cadence (write+fsync once enough votes
  /// accumulated). On error the batch is NOT in the WAL and must be
  /// rejected before being applied.
  Status AppendBatch(std::span<const crowd::VoteEvent> votes)
      DQM_EXCLUDES(wal_mutex_);

  /// Marks one AppendBatch'd batch as applied to the in-memory log. Must be
  /// called exactly once per successful AppendBatch, after the apply.
  void NoteApplied();

  /// write(2)+fsyncs everything buffered regardless of cadence — the
  /// explicit durability point (close, tests, CLI flush).
  Status Flush() DQM_EXCLUDES(wal_mutex_);

  bool checkpoints_enabled() const {
    return options_.checkpoint_every_votes > 0;
  }
  uint64_t checkpoint_every_votes() const {
    return options_.checkpoint_every_votes;
  }

  /// Snapshots the session state and swaps it in for the WAL. `build` runs
  /// with the WAL quiesced (appends blocked, in-flight batches drained) and
  /// must return the log's checkpoint data carrying the generation it is
  /// passed; the caller is responsible for holding the session mutex so the
  /// serialized apply path is also quiet. Failures leave the WAL intact
  /// (the previous checkpoint, if any, stays committed).
  Status CommitCheckpoint(
      const std::function<Result<crowd::CheckpointData>(uint64_t generation)>&
          build) DQM_EXCLUDES(wal_mutex_);

  struct RecoveryStats {
    /// Votes re-emitted from the checkpoint snapshot.
    uint64_t checkpoint_votes = 0;
    /// Votes replayed from the WAL tail.
    uint64_t replayed_votes = 0;
    uint64_t torn_records = 0;
    bool had_checkpoint = false;
  };

  /// Full recovery: loads the latest checkpoint (if any) and replays the
  /// WAL tail through `restore`, healing the checkpoint/WAL generation
  /// seam and truncating a torn tail. Call once, before the first
  /// AppendBatch, with the session not yet serving.
  Result<RecoveryStats> Recover(
      size_t num_items,
      const std::function<Status(std::span<const crowd::VoteEvent>)>& restore)
      DQM_EXCLUDES(wal_mutex_);

  /// Heap retained by the WAL buffer + replay scratch — rolled into the
  /// session's RetainedBytes accounting.
  size_t RetainedBytes() const DQM_EXCLUDES(wal_mutex_);

  const DurabilityOptions& options() const { return options_; }
  const std::string& dir() const { return options_.dir; }
  std::string wal_path() const;
  std::string checkpoint_path() const;

  /// Installs a crash-injection hook for tests (called with the WAL mutex
  /// held after each Phase completes). Install before concurrent use.
  void SetPhaseHookForTest(std::function<void(Phase)> hook)
      DQM_EXCLUDES(wal_mutex_);

  /// One durability event worth shipping to a replica. Fired synchronously
  /// with the WAL mutex held, so the hook sees events in exact commit order
  /// and the reported durable boundary cannot move under it. The hook must
  /// not call back into this SessionDurability and must only take locks
  /// ranked above kWal (the replicator uses LockRank::kReplication).
  struct ShipEvent {
    enum class Kind : uint8_t {
      /// A group-commit fsync was acknowledged: WAL bytes up to
      /// `durable_size` are durable and eligible for shipping.
      kWalDurable,
      /// A checkpoint was rename-committed and the WAL reset to
      /// `generation`; `checkpoint_votes` is the snapshot's num_events.
      kCheckpoint,
    };
    Kind kind = Kind::kWalDurable;
    uint64_t generation = 0;
    /// WAL file size (including the header) covered by the last fsync.
    uint64_t durable_size = 0;
    uint64_t checkpoint_votes = 0;
  };

  /// Installs (or clears, with nullptr) the replication ship hook. Ship
  /// failures must be absorbed by the hook (log + count + mark divergent):
  /// a replica falling behind must never fail a primary commit.
  void SetShipHook(std::function<void(const ShipEvent&)> hook)
      DQM_EXCLUDES(wal_mutex_);

  /// The WAL's fsync-acknowledged file size (header included) — the durable
  /// prefix boundary a replica may trust.
  uint64_t DurableWalSize() const DQM_EXCLUDES(wal_mutex_) {
    MutexLock lock(wal_mutex_);
    return wal_.durable_size();
  }

  /// Current WAL generation (advances at each checkpoint commit).
  uint64_t WalGeneration() const DQM_EXCLUDES(wal_mutex_) {
    MutexLock lock(wal_mutex_);
    return wal_.generation();
  }

  /// Makes the next WAL fsync fail as if the device errored, sealing the
  /// log — for flush-failure / seal-and-heal tests.
  void InjectWalSyncErrorForTest() DQM_EXCLUDES(wal_mutex_) {
    MutexLock lock(wal_mutex_);
    wal_.InjectSyncErrorForTest();
  }

  /// True once an I/O failure sealed the WAL (appends are being rejected).
  bool wal_sealed() const DQM_EXCLUDES(wal_mutex_) {
    MutexLock lock(wal_mutex_);
    return wal_.sealed();
  }

  /// True while the session is running with durability degraded to
  /// volatile mode (degrade_to_volatile policy, WAL sealed). Cleared by
  /// the checkpoint reset that re-arms durability.
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Cumulative votes this session acknowledged WITHOUT a durable record —
  /// what a crash during the degraded windows would lose. Monotonic across
  /// re-arms (it is an audit trail, not a live backlog: a successful
  /// checkpoint makes the in-memory state durable again).
  uint64_t dropped_durability_votes() const {
    return degraded_votes_.load(std::memory_order_acquire);
  }

 private:
  explicit SessionDurability(DurabilityOptions options);

  Status OpenWal() DQM_EXCLUDES(wal_mutex_);
  Status FlushLocked(bool sync) DQM_REQUIRES(wal_mutex_);
  /// Flips the session into degraded mode (gauge, log) the first time a
  /// seal is absorbed under degrade_to_volatile.
  void EnterDegradedLocked(const Status& cause) DQM_REQUIRES(wal_mutex_);
  void RunHook(Phase phase) DQM_REQUIRES(wal_mutex_);
  void StartFlusher();
  void FlusherLoop() DQM_EXCLUDES(wal_mutex_);

  const DurabilityOptions options_;
  mutable Mutex wal_mutex_{LockRank::kWal, "session-wal"};
  crowd::VoteWal wal_ DQM_GUARDED_BY(wal_mutex_);
  /// Votes buffered/written since the last fsync — the group-commit gauge.
  uint64_t pending_votes_ DQM_GUARDED_BY(wal_mutex_) = 0;
  /// Batches appended to the WAL but not yet applied to the in-memory log.
  /// Incremented under wal_mutex_ (AppendBatch), decremented lock-free
  /// (NoteApplied) so the checkpoint quiesce can drain it while holding the
  /// mutex without deadlocking the appliers.
  std::atomic<uint64_t> in_flight_{0};
  /// Degradation state (degrade_to_volatile policy). Written under
  /// wal_mutex_; atomics so snapshot readers see them lock-free.
  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> degraded_votes_{0};
  std::function<void(Phase)> phase_hook_ DQM_GUARDED_BY(wal_mutex_);
  std::function<void(const ShipEvent&)> ship_hook_ DQM_GUARDED_BY(wal_mutex_);
  bool stop_flusher_ DQM_GUARDED_BY(wal_mutex_) = false;
  CondVar flusher_cv_;
  std::thread flusher_;
  /// Refcounted per-session checkpoint-size gauge (released in the dtor).
  telemetry::Gauge* checkpoint_bytes_gauge_ = nullptr;
};

}  // namespace dqm::engine

#endif  // DQM_ENGINE_DURABILITY_H_
