// Built-in workload families. Each family is a thin specialization of one
// shared crowd-simulation skeleton (CrowdWorkloadBase): the hostile
// ingredient — drifting rates, adversarial cohorts, heavy-tailed arrival or
// difficulty — plugs into exactly one hook, so families compose the same
// deterministic machinery the paper-shaped scenarios use.

#include "workload/families.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "crowd/assignment.h"
#include "crowd/simulator.h"
#include "crowd/worker.h"

namespace dqm::workload {

namespace {

// Rng stream salts, one per independent randomness consumer; the pool and
// simulator salts match core/scenario.cc so a benign workload with matching
// params reproduces a SimulationScenario run exactly.
constexpr uint64_t kPoolSalt = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kSimSalt = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kNoiseSalt = 0x6a09e667f3bcc909ULL;
constexpr uint64_t kDriftSalt = 0xbb67ae8584caa73bULL;
constexpr uint64_t kBatchSalt = 0x3c6ef372fe94f82bULL;

/// Bounded Pareto draw: `minimum * (1-u)^(-1/alpha)` clamped to `maximum`.
/// Heavy right tail for small alpha; equals `minimum` at u = 0.
double BoundedPareto(Rng& rng, double alpha, double minimum, double maximum) {
  double u = rng.UniformDouble();  // [0, 1); 1-u is (0, 1]
  return std::min(maximum, minimum * std::pow(1.0 - u, -1.0 / alpha));
}

/// Shared skeleton: truth layout, uniform assignment, worker pool, fixed
/// batch cadence. Families override the hooks they need.
class CrowdWorkloadBase : public Workload {
 public:
  CrowdWorkloadBase(std::string spec, CommonParams common)
      : spec_(std::move(spec)), common_(common) {}

  GeneratedWorkload Generate(uint64_t seed) const final {
    Rng truth_rng(seed);
    std::vector<bool> truth(common_.num_items, false);
    for (size_t index :
         truth_rng.SampleIndices(common_.num_items, common_.num_dirty)) {
      truth[index] = true;
    }

    crowd::WorkerPool::Config pool_config;
    pool_config.base.false_positive_rate = common_.fp;
    pool_config.base.false_negative_rate = common_.fn;
    pool_config.variation = common_.variation;
    CustomizePool(pool_config);

    crowd::CrowdSimulator::Config sim_config;
    sim_config.tasks_per_worker = common_.tasks_per_worker;
    sim_config.seed = seed ^ kSimSalt;
    crowd::CrowdSimulator simulator(
        truth,
        std::make_unique<crowd::UniformAssignment>(common_.num_items,
                                                   common_.items_per_task),
        crowd::WorkerPool(pool_config, Rng(seed ^ kPoolSalt)), sim_config);
    simulator.SetItemNoise(BuildItemNoise(truth, seed ^ kNoiseSalt));
    simulator.SetProfileDynamics(MakeDynamics(seed ^ kDriftSalt));

    GeneratedWorkload out{std::move(truth),
                          crowd::ResponseLog(common_.num_items),
                          {}};
    simulator.RunTasks(out.log, common_.num_tasks);
    out.batch_sizes = MakeBatches(out.log.num_events(), seed ^ kBatchSalt);
    return out;
  }

  size_t num_items() const final { return common_.num_items; }
  const std::string& spec() const final { return spec_; }

 protected:
  /// Mixture cohorts, qualification screens, ... (adversarial).
  virtual void CustomizePool(crowd::WorkerPool::Config&) const {}
  /// Per-item difficulty (heavytail).
  virtual std::vector<crowd::ItemNoise> BuildItemNoise(
      const std::vector<bool>&, uint64_t) const {
    return {};
  }
  /// Per-(worker, task) rate dynamics (drift).
  virtual crowd::CrowdSimulator::ProfileDynamics MakeDynamics(uint64_t) const {
    return nullptr;
  }
  /// Ingest batch partition; default is the fixed `batch=` cadence.
  virtual std::vector<size_t> MakeBatches(size_t num_events, uint64_t) const {
    std::vector<size_t> batches;
    for (size_t begin = 0; begin < num_events; begin += common_.batch) {
      batches.push_back(std::min(common_.batch, num_events - begin));
    }
    return batches;
  }

  const std::string spec_;
  const CommonParams common_;
};

// --- drift: per-worker accuracy random walks plus a fleet-wide trend. ---

class DriftWorkload : public CrowdWorkloadBase {
 public:
  DriftWorkload(std::string spec, CommonParams common, double walk,
                double trend)
      : CrowdWorkloadBase(std::move(spec), common),
        walk_(walk),
        trend_(trend) {}

 protected:
  crowd::CrowdSimulator::ProfileDynamics MakeDynamics(
      uint64_t seed) const override {
    // One mutable walk state per Generate call, owned by the callback:
    // per-worker offsets advance once per task the worker performs, and the
    // fleet-wide trend moves with the task index — so early and late tasks
    // are answered by measurably different crowds.
    struct WalkState {
      Rng rng;
      std::unordered_map<uint32_t, std::pair<double, double>> offsets;
      explicit WalkState(uint64_t seed) : rng(seed) {}
    };
    auto state = std::make_shared<WalkState>(seed);
    double walk = walk_;
    double trend = trend_;
    return [state, walk, trend](uint32_t worker, uint32_t task,
                                crowd::WorkerProfile& profile) {
      auto [it, inserted] = state->offsets.try_emplace(worker, 0.0, 0.0);
      it->second.first += state->rng.Gaussian(0.0, walk);
      it->second.second += state->rng.Gaussian(0.0, walk);
      double shift = trend * static_cast<double>(task);
      profile.false_positive_rate =
          std::clamp(profile.false_positive_rate + it->second.first + shift,
                     0.0, 0.98);
      profile.false_negative_rate =
          std::clamp(profile.false_negative_rate + it->second.second + shift,
                     0.0, 0.98);
    };
  }

 private:
  double walk_;
  double trend_;
};

// --- adversarial: colluding / spamming cohorts inside an honest crowd. ---

struct AdversaryMode {
  const char* name;
  crowd::WorkerProfile profile;
};

constexpr AdversaryMode kAdversaryModes[] = {
    // Colluders who always vote the opposite of the truth.
    {"invert", {1.0, 1.0}},
    // Spammers who mark everything dirty / everything clean.
    {"spam-dirty", {1.0, 0.0}},
    {"spam-clean", {0.0, 1.0}},
    // Coin-flip spammers.
    {"random", {0.5, 0.5}},
};

class AdversarialWorkload : public CrowdWorkloadBase {
 public:
  AdversarialWorkload(std::string spec, CommonParams common, double fraction,
                      crowd::WorkerProfile adversary)
      : CrowdWorkloadBase(std::move(spec), common),
        fraction_(fraction),
        adversary_(adversary) {}

 protected:
  void CustomizePool(crowd::WorkerPool::Config& pool) const override {
    if (fraction_ < 1.0) {
      pool.cohorts.push_back(crowd::WorkerPool::Cohort{
          1.0 - fraction_, pool.base, common_.variation});
    }
    if (fraction_ > 0.0) {
      // Adversaries behave identically (collusion), hence zero variation.
      pool.cohorts.push_back(
          crowd::WorkerPool::Cohort{fraction_, adversary_, 0.0});
    }
  }

 private:
  double fraction_;
  crowd::WorkerProfile adversary_;
};

// --- burst: heavy-tailed ingest batches (arrival pattern, not votes). ---

class BurstWorkload : public CrowdWorkloadBase {
 public:
  BurstWorkload(std::string spec, CommonParams common, double alpha,
                size_t min_batch, size_t max_batch)
      : CrowdWorkloadBase(std::move(spec), common),
        alpha_(alpha),
        min_batch_(min_batch),
        max_batch_(max_batch) {}

 protected:
  std::vector<size_t> MakeBatches(size_t num_events,
                                  uint64_t seed) const override {
    Rng rng(seed);
    std::vector<size_t> batches;
    size_t remaining = num_events;
    while (remaining > 0) {
      auto size = static_cast<size_t>(
          BoundedPareto(rng, alpha_, static_cast<double>(min_batch_),
                        static_cast<double>(max_batch_)));
      size = std::min(std::max<size_t>(size, 1), remaining);
      batches.push_back(size);
      remaining -= size;
    }
    return batches;
  }

 private:
  double alpha_;
  size_t min_batch_;
  size_t max_batch_;
};

// --- heavytail: Pareto-distributed item difficulty. ---

class HeavyTailWorkload : public CrowdWorkloadBase {
 public:
  HeavyTailWorkload(std::string spec, CommonParams common,
                    double hard_fraction, double scale, double alpha,
                    double cap)
      : CrowdWorkloadBase(std::move(spec), common),
        hard_fraction_(hard_fraction),
        scale_(scale),
        alpha_(alpha),
        cap_(cap) {}

 protected:
  std::vector<crowd::ItemNoise> BuildItemNoise(const std::vector<bool>& truth,
                                               uint64_t seed) const override {
    // A `hard_fraction` of items carries Pareto-tailed extra error mass:
    // most hard items are mildly harder, a few are nearly impossible (the
    // "difficult pairs" of Section 6.1.2 pushed to its heavy-tailed limit).
    // Dirty items get extra miss probability, clean items extra
    // false-positive probability.
    Rng rng(seed);
    std::vector<crowd::ItemNoise> noise(truth.size());
    for (size_t i = 0; i < truth.size(); ++i) {
      if (!rng.Bernoulli(hard_fraction_)) continue;
      auto extra = static_cast<float>(std::min(
          cap_, scale_ * (BoundedPareto(rng, alpha_, 1.0, 1e6) - 1.0)));
      if (truth[i]) {
        noise[i].extra_false_negative = extra;
      } else {
        noise[i].extra_false_positive = extra;
      }
    }
    return noise;
  }

 private:
  double hard_fraction_;
  double scale_;
  double alpha_;
  double cap_;
};

// --- spec plumbing. ---

Status ValidateRate(const EstimatorSpec& spec, const char* key, double value) {
  if (value >= 0.0 && value <= 1.0) return Status::OK();
  return Status::InvalidArgument(StrFormat("workload '%s': %s=%g not in [0, 1]",
                                           spec.name.c_str(), key, value));
}

Status ValidatePositive(const EstimatorSpec& spec, const char* key,
                        uint64_t value) {
  if (value > 0) return Status::OK();
  return Status::InvalidArgument(
      StrFormat("workload '%s': %s must be positive", spec.name.c_str(), key));
}

using FamilyBuilder = std::function<Result<std::unique_ptr<Workload>>(
    const EstimatorSpec& spec, SpecParamReader& reader, CommonParams common)>;

/// Wraps a family builder into a WorkloadFactory: shared-param reading, the
/// family's own params, then the unknown-param sweep — mirroring how the
/// estimator factories consume their specs.
WorkloadFactory MakeFactory(FamilyBuilder builder) {
  return [builder = std::move(builder)](const EstimatorSpec& spec)
             -> Result<std::unique_ptr<Workload>> {
    SpecParamReader reader(spec);
    DQM_ASSIGN_OR_RETURN(CommonParams common, ReadCommonParams(reader));
    DQM_ASSIGN_OR_RETURN(std::unique_ptr<Workload> workload,
                         builder(spec, reader, common));
    DQM_RETURN_NOT_OK(reader.VerifyAllConsumed());
    return workload;
  };
}

}  // namespace

Result<CommonParams> ReadCommonParams(SpecParamReader& reader) {
  CommonParams params;
  DQM_ASSIGN_OR_RETURN(uint32_t n, reader.GetUint32("n", 1000));
  DQM_ASSIGN_OR_RETURN(uint32_t dirty, reader.GetUint32("dirty", 100));
  DQM_ASSIGN_OR_RETURN(uint32_t tasks, reader.GetUint32("tasks", 400));
  DQM_ASSIGN_OR_RETURN(uint32_t ipt, reader.GetUint32("ipt", 10));
  DQM_ASSIGN_OR_RETURN(uint32_t tpw, reader.GetUint32("tpw", 1));
  DQM_ASSIGN_OR_RETURN(params.fp, reader.GetDouble("fp", params.fp));
  DQM_ASSIGN_OR_RETURN(params.fn, reader.GetDouble("fn", params.fn));
  DQM_ASSIGN_OR_RETURN(params.variation,
                       reader.GetDouble("variation", params.variation));
  DQM_ASSIGN_OR_RETURN(uint32_t batch, reader.GetUint32("batch", 128));
  if (n == 0 || tasks == 0 || ipt == 0 || tpw == 0 || batch == 0) {
    return Status::InvalidArgument(
        "workload: n, tasks, ipt, tpw and batch must be positive");
  }
  if (dirty > n) {
    return Status::InvalidArgument(
        StrFormat("workload: dirty=%u exceeds n=%u", dirty, n));
  }
  if (ipt > n) {
    return Status::InvalidArgument(
        StrFormat("workload: ipt=%u exceeds n=%u", ipt, n));
  }
  if (params.fp < 0.0 || params.fp > 1.0 || params.fn < 0.0 ||
      params.fn > 1.0) {
    return Status::InvalidArgument("workload: fp and fn must be in [0, 1]");
  }
  if (params.variation < 0.0) {
    return Status::InvalidArgument("workload: variation must be >= 0");
  }
  params.num_items = n;
  params.num_dirty = dirty;
  params.num_tasks = tasks;
  params.items_per_task = ipt;
  params.tasks_per_worker = tpw;
  params.batch = batch;
  return params;
}

void internal::RegisterBuiltinFamilies(WorkloadRegistry& registry) {
  auto check = [](Status status) {
    DQM_CHECK(status.ok()) << status.ToString();
  };

  check(registry.Register(WorkloadRegistry::Entry{
      .name = "benign",
      .help = "the paper's fixed-quality crowd; common params only "
              "(n, dirty, tasks, ipt, tpw, fp, fn, variation, batch)",
      .factory = MakeFactory(
          [](const EstimatorSpec& spec, SpecParamReader&, CommonParams common)
              -> Result<std::unique_ptr<Workload>> {
            return std::unique_ptr<Workload>(std::make_unique<CrowdWorkloadBase>(
                spec.ToString(), common));
          })}));

  check(registry.Register(WorkloadRegistry::Entry{
      .name = "drift",
      .help = "worker-quality drift: per-worker random walks (walk=<std>, "
              "default 0.02) plus a fleet-wide per-task trend (trend=<float>, "
              "default 0.0005) on both error rates; plus common params",
      .factory = MakeFactory(
          [](const EstimatorSpec& spec, SpecParamReader& reader,
             CommonParams common) -> Result<std::unique_ptr<Workload>> {
            DQM_ASSIGN_OR_RETURN(double walk, reader.GetDouble("walk", 0.02));
            DQM_ASSIGN_OR_RETURN(double trend,
                                 reader.GetDouble("trend", 0.0005));
            if (walk < 0.0) {
              return Status::InvalidArgument(
                  "workload 'drift': walk must be >= 0");
            }
            return std::unique_ptr<Workload>(std::make_unique<DriftWorkload>(
                spec.ToString(), common, walk, trend));
          })}));

  check(registry.Register(WorkloadRegistry::Entry{
      .name = "adversarial",
      .help = "colluding cohort inside an honest crowd: fraction=<0..1> "
              "(default 0.2) of workers use mode=invert|spam-dirty|"
              "spam-clean|random (default invert); plus common params",
      .factory = MakeFactory(
          [](const EstimatorSpec& spec, SpecParamReader& reader,
             CommonParams common) -> Result<std::unique_ptr<Workload>> {
            DQM_ASSIGN_OR_RETURN(double fraction,
                                 reader.GetDouble("fraction", 0.2));
            DQM_RETURN_NOT_OK(ValidateRate(spec, "fraction", fraction));
            DQM_ASSIGN_OR_RETURN(std::string mode,
                                 reader.GetString("mode", "invert"));
            for (const AdversaryMode& known : kAdversaryModes) {
              if (mode == known.name) {
                return std::unique_ptr<Workload>(
                    std::make_unique<AdversarialWorkload>(
                        spec.ToString(), common, fraction, known.profile));
              }
            }
            return Status::InvalidArgument(StrFormat(
                "workload 'adversarial': mode=%s (want invert|spam-dirty|"
                "spam-clean|random)",
                mode.c_str()));
          })}));

  check(registry.Register(WorkloadRegistry::Entry{
      .name = "burst",
      .help = "bursty arrival: ingest batches drawn from a bounded Pareto "
              "(alpha=<float> default 1.3, min_batch=<uint> default 16, "
              "max_batch=<uint> default 4096; batch= is ignored); plus "
              "common params",
      .factory = MakeFactory(
          [](const EstimatorSpec& spec, SpecParamReader& reader,
             CommonParams common) -> Result<std::unique_ptr<Workload>> {
            DQM_ASSIGN_OR_RETURN(double alpha, reader.GetDouble("alpha", 1.3));
            DQM_ASSIGN_OR_RETURN(uint32_t min_batch,
                                 reader.GetUint32("min_batch", 16));
            DQM_ASSIGN_OR_RETURN(uint32_t max_batch,
                                 reader.GetUint32("max_batch", 4096));
            if (alpha <= 0.0) {
              return Status::InvalidArgument(
                  "workload 'burst': alpha must be > 0");
            }
            DQM_RETURN_NOT_OK(ValidatePositive(spec, "min_batch", min_batch));
            if (max_batch < min_batch) {
              return Status::InvalidArgument(
                  "workload 'burst': max_batch < min_batch");
            }
            return std::unique_ptr<Workload>(std::make_unique<BurstWorkload>(
                spec.ToString(), common, alpha, min_batch, max_batch));
          })}));

  check(registry.Register(WorkloadRegistry::Entry{
      .name = "heavytail",
      .help = "heavy-tailed item difficulty: hard_fraction=<0..1> (default "
              "0.15) of items carry Pareto extra error (scale=<float> "
              "default 0.05, alpha=<float> default 1.1, cap=<float> default "
              "0.6); plus common params",
      .factory = MakeFactory(
          [](const EstimatorSpec& spec, SpecParamReader& reader,
             CommonParams common) -> Result<std::unique_ptr<Workload>> {
            DQM_ASSIGN_OR_RETURN(double hard_fraction,
                                 reader.GetDouble("hard_fraction", 0.15));
            DQM_RETURN_NOT_OK(
                ValidateRate(spec, "hard_fraction", hard_fraction));
            DQM_ASSIGN_OR_RETURN(double scale, reader.GetDouble("scale", 0.05));
            DQM_ASSIGN_OR_RETURN(double alpha, reader.GetDouble("alpha", 1.1));
            DQM_ASSIGN_OR_RETURN(double cap, reader.GetDouble("cap", 0.6));
            if (scale < 0.0 || alpha <= 0.0 || cap < 0.0 || cap > 0.95) {
              return Status::InvalidArgument(
                  "workload 'heavytail': want scale >= 0, alpha > 0, "
                  "cap in [0, 0.95]");
            }
            return std::unique_ptr<Workload>(
                std::make_unique<HeavyTailWorkload>(spec.ToString(), common,
                                                    hard_fraction, scale,
                                                    alpha, cap));
          })}));
}

}  // namespace dqm::workload
