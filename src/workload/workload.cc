#include "workload/workload.h"

#include <utility>

#include "common/string_util.h"

namespace dqm::workload {

size_t GeneratedWorkload::NumDirty() const {
  size_t count = 0;
  for (bool dirty : truth) count += dirty ? 1 : 0;
  return count;
}

Status WorkloadRegistry::Register(Entry entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("workload name must be non-empty");
  }
  if (!entry.factory) {
    return Status::InvalidArgument(
        StrFormat("workload '%s': null factory", entry.name.c_str()));
  }
  std::string name = ToLower(entry.name);
  entry.name = name;
  MutexLock lock(mutex_);
  auto [it, inserted] =
      entries_.emplace(name, std::make_shared<const Entry>(std::move(entry)));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("workload '%s' is already registered", name.c_str()));
  }
  names_.push_back(name);
  return Status::OK();
}

bool WorkloadRegistry::Contains(std::string_view name) const {
  MutexLock lock(mutex_);
  return entries_.find(ToLower(name)) != entries_.end();
}

std::vector<std::string> WorkloadRegistry::Names() const {
  MutexLock lock(mutex_);
  return names_;
}

Result<std::string> WorkloadRegistry::Help(std::string_view name) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("unknown workload '%s'",
                                      std::string(name).c_str()));
  }
  return it->second->help;
}

Result<std::unique_ptr<Workload>> WorkloadRegistry::Create(
    const EstimatorSpec& spec) const {
  std::shared_ptr<const Entry> entry;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(ToLower(spec.name));
    if (it == entries_.end()) {
      return Status::NotFound(
          StrFormat("unknown workload '%s' (registered: %s)",
                    spec.name.c_str(), Join(names_, ", ").c_str()));
    }
    entry = it->second;
  }
  return entry->factory(spec);
}

Result<std::unique_ptr<Workload>> WorkloadRegistry::Create(
    std::string_view spec) const {
  DQM_ASSIGN_OR_RETURN(EstimatorSpec parsed, ParseEstimatorSpec(spec));
  return Create(parsed);
}

WorkloadRegistry& WorkloadRegistry::Global() {
  static WorkloadRegistry* registry = [] {
    auto* r = new WorkloadRegistry();
    internal::RegisterBuiltinFamilies(*r);
    return r;
  }();
  return *registry;
}

}  // namespace dqm::workload
