#ifndef DQM_WORKLOAD_FAMILIES_H_
#define DQM_WORKLOAD_FAMILIES_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "workload/workload.h"

namespace dqm::workload {

/// Crowd-shape knobs shared by every built-in family, all settable from the
/// spec string:
///
///   n=<uint>          item universe size N             (default 1000)
///   dirty=<uint>      true-dirty items |R_dirty|       (default 100)
///   tasks=<uint>      crowd tasks to simulate          (default 400)
///   ipt=<uint>        items per task                   (default 10)
///   tpw=<uint>        consecutive tasks per worker     (default 1)
///   fp=<float>        honest false-positive rate       (default 0.01)
///   fn=<float>        honest false-negative rate       (default 0.10)
///   variation=<float> per-worker rate scatter std-dev  (default 0.02)
///   batch=<uint>      fixed ingest batch size          (default 128)
///
/// Family-specific params ride alongside these (see each Register help
/// line). Unknown params are rejected, like everywhere else specs are read.
struct CommonParams {
  size_t num_items = 1000;
  size_t num_dirty = 100;
  size_t num_tasks = 400;
  size_t items_per_task = 10;
  size_t tasks_per_worker = 1;
  double fp = 0.01;
  double fn = 0.10;
  double variation = 0.02;
  size_t batch = 128;
};

/// Reads the shared params from `reader` (leaving family-specific keys for
/// the caller). InvalidArgument on malformed values or inconsistent sizes
/// (dirty > n, ipt > n, zero tasks/ipt/batch).
Result<CommonParams> ReadCommonParams(SpecParamReader& reader);

}  // namespace dqm::workload

#endif  // DQM_WORKLOAD_FAMILIES_H_
