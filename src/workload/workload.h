#ifndef DQM_WORKLOAD_WORKLOAD_H_
#define DQM_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "crowd/response_log.h"
#include "estimators/registry.h"

namespace dqm::workload {

// Workloads reuse the estimator registry's "name?k=v&k=v" spec grammar and
// its typed param reader wholesale: one grammar for everything selectable by
// string (CLI flags, bench configs, engine sessions, workload sweeps).
using estimators::EstimatorSpec;
using estimators::ParseEstimatorSpec;
using estimators::SpecParamReader;

/// One fully-materialized run of a workload: the hidden truth, the complete
/// vote stream, and the arrival batching. `batch_sizes` partitions
/// `log.events()` into the ingest batches a live deployment would commit —
/// bursty workloads produce heavy-tailed partitions that stress
/// engine::EstimationSession, benign ones a fixed cadence. The sizes always
/// sum to `log.num_events()`.
struct GeneratedWorkload {
  std::vector<bool> truth;
  crowd::ResponseLog log;
  std::vector<size_t> batch_sizes;

  /// Ground-truth |R_dirty| — the target every estimator tries to recover.
  size_t NumDirty() const;
};

/// A reproducible crowd-vote workload generator. Implementations describe a
/// scenario *family* (drifting workers, adversarial cohorts, bursty
/// arrival, ...) whose knobs were fixed at construction from a spec string;
/// Generate materializes one run per seed, bit-identically.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual GeneratedWorkload Generate(uint64_t seed) const = 0;

  /// Item-universe size N of every generated run.
  virtual size_t num_items() const = 0;

  /// The spec string this workload was built from ("drift?walk=0.02").
  virtual const std::string& spec() const = 0;
};

/// Builds one workload from a parsed spec. Factories must reject unknown or
/// out-of-range params with InvalidArgument (use SpecParamReader) and never
/// abort on bad input.
using WorkloadFactory =
    std::function<Result<std::unique_ptr<Workload>>(const EstimatorSpec&)>;

/// Open name -> factory registry for workload families, mirroring
/// estimators::EstimatorRegistry: built-in families self-register via the
/// internal hook below, library users add their own with Register() and
/// select them anywhere a workload spec string is accepted
/// (ExperimentRunner::RunWorkload, dqm_engine_cli --workload,
/// bench_workload_matrix, the conformance harness).
class WorkloadRegistry {
 public:
  struct Entry {
    /// Registry key, lower-case ("drift", "adversarial", ...).
    std::string name;
    /// One-line param documentation for --help style listings.
    std::string help;
    WorkloadFactory factory;
  };

  WorkloadRegistry() = default;
  WorkloadRegistry(const WorkloadRegistry&) = delete;
  WorkloadRegistry& operator=(const WorkloadRegistry&) = delete;

  /// Registers an entry. AlreadyExists when the name is taken;
  /// InvalidArgument for an empty name or null factory.
  Status Register(Entry entry);

  bool Contains(std::string_view name) const;

  /// Registered family names, in registration order.
  std::vector<std::string> Names() const;

  /// The help line for `name`; NotFound otherwise.
  Result<std::string> Help(std::string_view name) const;

  /// Creates a workload from a parsed spec. NotFound for unknown names,
  /// InvalidArgument for bad params.
  Result<std::unique_ptr<Workload>> Create(const EstimatorSpec& spec) const;

  /// Parse + create in one step.
  Result<std::unique_ptr<Workload>> Create(std::string_view spec) const;

  /// The process-wide registry with all built-in families registered.
  static WorkloadRegistry& Global();

 private:
  mutable Mutex mutex_{LockRank::kWorkloadRegistry, "workload-registry"};
  std::unordered_map<std::string, std::shared_ptr<const Entry>> entries_
      DQM_GUARDED_BY(mutex_);
  std::vector<std::string> names_
      DQM_GUARDED_BY(mutex_);  // registration order
};

namespace internal {
/// Built-in family registration hook, defined in families.cc;
/// WorkloadRegistry::Global() invokes it exactly once.
void RegisterBuiltinFamilies(WorkloadRegistry& registry);
}  // namespace internal

}  // namespace dqm::workload

#endif  // DQM_WORKLOAD_WORKLOAD_H_
