#ifndef DQM_TEXT_SIMILARITY_H_
#define DQM_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace dqm::text {

/// Jaccard similarity of two token multisets, computed on the distinct-token
/// sets: |A ∩ B| / |A ∪ B|. Returns 1.0 when both are empty.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// Jaccard similarity of the word-token sets of two strings (CrowdER's
/// cheap first-stage similarity).
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard similarity of the q-gram sets of two strings; robust to small
/// typos where token Jaccard is brittle.
double QGramJaccard(std::string_view a, std::string_view b, size_t q = 3);

/// Combined matcher score in [0, 1] used by the ER heuristics: the maximum
/// of normalized edit similarity (on normalized text) and token Jaccard.
/// Rationale: edit similarity handles typos, Jaccard handles token
/// re-ordering ("Cafe Ritz-Carlton Buckhead" vs "Ritz-Carlton Cafe
/// (buckhead)"), and the paper's heuristic band [alpha, beta] is applied on
/// top of a single score.
double HybridSimilarity(std::string_view a, std::string_view b);

}  // namespace dqm::text

#endif  // DQM_TEXT_SIMILARITY_H_
