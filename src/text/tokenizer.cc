#include "text/tokenizer.h"

#include <cctype>

#include "common/logging.h"
#include "common/string_util.h"

namespace dqm::text {

std::vector<std::string> WordTokens(std::string_view input) {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : input) {
    auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

std::vector<std::string> QGrams(std::string_view input, size_t q) {
  DQM_CHECK_GE(q, 1u);
  std::string padded;
  padded.reserve(input.size() + 2 * (q - 1));
  padded.append(q - 1, '#');
  for (char raw : input) {
    padded.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(raw))));
  }
  padded.append(q - 1, '#');
  std::vector<std::string> grams;
  if (padded.size() < q) return grams;
  grams.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    grams.push_back(padded.substr(i, q));
  }
  return grams;
}

std::string NormalizeForMatching(std::string_view input) {
  return Join(WordTokens(input), " ");
}

}  // namespace dqm::text
