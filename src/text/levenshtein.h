#ifndef DQM_TEXT_LEVENSHTEIN_H_
#define DQM_TEXT_LEVENSHTEIN_H_

#include <cstddef>
#include <string_view>

namespace dqm::text {

/// Levenshtein (unit-cost insert/delete/substitute) edit distance.
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Early-exit variant: returns the distance if it is <= `bound`, otherwise
/// any value > `bound` (exact value unspecified). Uses the standard banded
/// dynamic program, O(bound * min(|a|,|b|)) time; this is what makes the
/// all-pairs similarity joins in the ER substrate tractable.
size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                  size_t bound);

/// Normalized edit similarity in [0, 1]:
///   1 - distance(a, b) / max(|a|, |b|)
/// (1.0 for two empty strings). This is the "normalized edit distance-based
/// similarity" heuristic used throughout the paper's experiments.
double NormalizedEditSimilarity(std::string_view a, std::string_view b);

/// Similarity variant that exits early when the similarity is certainly
/// below `min_similarity`; returns 0.0 in that case.
double BoundedEditSimilarity(std::string_view a, std::string_view b,
                             double min_similarity);

}  // namespace dqm::text

#endif  // DQM_TEXT_LEVENSHTEIN_H_
