#include "text/similarity.h"

#include <algorithm>
#include <unordered_set>

#include "text/levenshtein.h"
#include "text/tokenizer.h"

namespace dqm::text {

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  std::unordered_set<std::string> set_a(a.begin(), a.end());
  std::unordered_set<std::string> set_b(b.begin(), b.end());
  if (set_a.empty() && set_b.empty()) return 1.0;
  size_t intersection = 0;
  // Iterate the smaller set for the intersection count.
  const auto& small = set_a.size() <= set_b.size() ? set_a : set_b;
  const auto& large = set_a.size() <= set_b.size() ? set_b : set_a;
  for (const auto& token : small) {
    if (large.contains(token)) ++intersection;
  }
  size_t union_size = set_a.size() + set_b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double TokenJaccard(std::string_view a, std::string_view b) {
  return JaccardSimilarity(WordTokens(a), WordTokens(b));
}

double QGramJaccard(std::string_view a, std::string_view b, size_t q) {
  return JaccardSimilarity(QGrams(a, q), QGrams(b, q));
}

double HybridSimilarity(std::string_view a, std::string_view b) {
  std::string norm_a = NormalizeForMatching(a);
  std::string norm_b = NormalizeForMatching(b);
  double edit = NormalizedEditSimilarity(norm_a, norm_b);
  double jaccard = TokenJaccard(a, b);
  return std::max(edit, jaccard);
}

}  // namespace dqm::text
