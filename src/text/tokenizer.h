#ifndef DQM_TEXT_TOKENIZER_H_
#define DQM_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace dqm::text {

/// Splits `input` into lower-cased alphanumeric word tokens; every other
/// character is a separator. "Ritz-Carlton Cafe (buckhead)" ->
/// {"ritz", "carlton", "cafe", "buckhead"}.
std::vector<std::string> WordTokens(std::string_view input);

/// Character q-grams of the lower-cased input, with `q-1` boundary pad
/// characters ('#') on each side so short strings still produce grams.
/// Requires q >= 1.
std::vector<std::string> QGrams(std::string_view input, size_t q);

/// Canonical form used before similarity comparison: lower-cased word tokens
/// joined by single spaces. Makes edit distance robust to punctuation and
/// spacing noise.
std::string NormalizeForMatching(std::string_view input);

}  // namespace dqm::text

#endif  // DQM_TEXT_TOKENIZER_H_
