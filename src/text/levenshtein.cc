#include "text/levenshtein.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace dqm::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();

  // One rolling row over the shorter string.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t above = row[j];  // D[i-1][j]
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, above + 1, diag + cost});
      diag = above;
    }
  }
  return row[b.size()];
}

size_t BoundedLevenshteinDistance(std::string_view a, std::string_view b,
                                  size_t bound) {
  if (a.size() < b.size()) std::swap(a, b);
  size_t len_diff = a.size() - b.size();
  if (len_diff > bound) return bound + 1;
  if (b.empty()) return a.size();

  constexpr size_t kBig = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> row(b.size() + 1, kBig);
  for (size_t j = 0; j <= std::min(b.size(), bound); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    // Only cells with |i - j| <= bound can be <= bound.
    size_t j_lo = (i > bound) ? i - bound : 1;
    size_t j_hi = std::min(b.size(), i + bound);
    size_t diag;
    if (j_lo == 1) {
      diag = row[0];
      row[0] = (i <= bound) ? i : kBig;
    } else {
      diag = row[j_lo - 1];
      row[j_lo - 1] = kBig;  // column j_lo-1 left the band at this i
    }
    size_t row_min = kBig;
    for (size_t j = j_lo; j <= j_hi; ++j) {
      size_t above = row[j];
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t left = (j > j_lo || j_lo == 1) ? row[j - 1] : kBig;
      row[j] = std::min({left + 1, above + 1, diag + cost});
      diag = above;
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > bound) return bound + 1;  // the whole band exceeded bound
  }
  return row[b.size()];
}

double NormalizedEditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  size_t dist = LevenshteinDistance(a, b);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

double BoundedEditSimilarity(std::string_view a, std::string_view b,
                             double min_similarity) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  // similarity >= min_similarity  <=>  distance <= (1 - min) * longest
  double max_dist_f = (1.0 - min_similarity) * static_cast<double>(longest);
  auto bound = static_cast<size_t>(max_dist_f);
  size_t dist = BoundedLevenshteinDistance(a, b, bound);
  if (dist > bound) return 0.0;
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

}  // namespace dqm::text
