#ifndef DQM_ESTIMATORS_REGISTRY_H_
#define DQM_ESTIMATORS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "crowd/response_log.h"
#include "estimators/estimator.h"
#include "estimators/f_statistics.h"

namespace dqm::estimators {

/// A parsed estimator spec string. Grammar:
///
///   spec   := name [ '?' param ( '&' param )* ]
///   param  := key '=' value
///
/// e.g. "switch", "vchao92?shift=2", "switch?tau=50&two_sided=1". Names and
/// keys are ASCII case-insensitive (folded to lower case); values are kept
/// verbatim. Specs are how estimators are selected and configured everywhere
/// a string is more convenient than a type: CLI flags, engine OpenSession
/// calls, bench configs, saved experiment manifests.
struct EstimatorSpec {
  std::string name;
  /// Key/value pairs in the order written. Duplicate keys are rejected at
  /// parse time.
  std::vector<std::pair<std::string, std::string>> params;

  /// Canonical round-trip form: "name" or "name?k=v&k=v".
  std::string ToString() const;
};

/// Parses a spec string. InvalidArgument on empty name, malformed params
/// (missing '=', empty key) or duplicate keys. Unknown *names* are not
/// detected here — that is the registry's job.
Result<EstimatorSpec> ParseEstimatorSpec(std::string_view spec);

/// Splits a comma-separated spec list ("switch,vchao92?shift=2,voting") into
/// individual spec strings, trimming whitespace and dropping empty entries.
std::vector<std::string> SplitSpecList(std::string_view list);

/// Typed accessor over an EstimatorSpec's params for factories: reads each
/// key at most once and rejects keys nobody asked for, so a typo like
/// "switch?winow=9" fails loudly instead of being silently ignored.
class SpecParamReader {
 public:
  explicit SpecParamReader(const EstimatorSpec& spec);

  /// Each getter returns the parsed value, `fallback` when the key is
  /// absent, or InvalidArgument when the value does not parse (or violates
  /// the documented range).
  Result<uint32_t> GetUint32(std::string_view key, uint32_t fallback);
  Result<double> GetDouble(std::string_view key, double fallback);
  /// Accepts 1/0/true/false/yes/no (case-insensitive).
  Result<bool> GetBool(std::string_view key, bool fallback);
  /// The raw value string (lower-cased), for enum-like params.
  Result<std::string> GetString(std::string_view key,
                                std::string_view fallback);

  /// True when the spec sets `key` (does not consume it) — for rejecting
  /// mutually exclusive aliases.
  bool Has(std::string_view key) const;

  /// InvalidArgument naming every param no getter consumed; call last.
  Status VerifyAllConsumed() const;

 private:
  const std::string* Consume(std::string_view key);

  const EstimatorSpec& spec_;
  std::vector<bool> consumed_;
};

/// Shared per-pipeline vote statistics (see core::DataQualityMetric): when N
/// estimators watch one vote stream, the descriptive tallies and the
/// positive-vote fingerprint they would each rebuild are maintained once by
/// the pipeline and read by lightweight scorer estimators. Pointees outlive
/// every estimator created against them.
struct SharedVoteStats {
  /// The pipeline's response log: per-item tallies, NOMINAL / VOTING counts.
  /// Always set when the stats object itself is provided.
  const crowd::ResponseLog* log = nullptr;
  /// Frequency-of-frequencies fingerprint of dirty votes per item (the
  /// Chao92-family state). Null when no selected estimator asked for it —
  /// factories must fall back to standalone state in that case.
  const FStatistics* positive_f = nullptr;
};

/// Everything a factory needs to build one estimator instance.
struct EstimatorEnv {
  size_t num_items = 0;
  /// Non-null when the estimator is being attached to a multi-estimator
  /// pipeline that maintains shared statistics; null for standalone use
  /// (ExperimentRunner replays, direct construction).
  const SharedVoteStats* shared = nullptr;
};

/// Builds one estimator from a parsed spec. Factories must reject unknown
/// or out-of-range params with InvalidArgument (use SpecParamReader) and
/// never abort on bad input.
using SpecFactory = std::function<Result<std::unique_ptr<TotalErrorEstimator>>(
    const EstimatorEnv& env, const EstimatorSpec& spec)>;

/// Metamorphic guarantees an estimator declares about itself. The
/// conformance harness (tests/conformance/) runs every registered estimator
/// — built-in or user-supplied — against exactly the properties it claims,
/// under every registered workload family, so a new estimator or a new
/// workload is cross-verified by construction. All flags default to false:
/// an estimator that declares nothing only gets the universal checks
/// (finite, non-negative estimates; pipeline-vs-standalone identity).
struct ConformanceTraits {
  /// Estimate() depends only on the per-item vote multisets: bit-identical
  /// under any task-order permutation of the log (core::PermuteTasks).
  bool permutation_invariant = false;
  /// Estimate() is unchanged when votes are reordered *within* a task
  /// (items are distinct within a task, so each item's vote order is
  /// preserved). Weaker than permutation_invariant; holds for SWITCH too.
  bool within_task_invariant = false;
  /// Estimate() is exactly unchanged when the entire log is ingested twice
  /// (fresh task/worker ids for the second copy). True for the descriptive
  /// counts, false for coverage-based estimators by design.
  bool duplication_invariant = false;
  /// Estimate() never decreases when one more dirty vote arrives.
  bool monotone_in_dirty_votes = false;
  /// Declared numerical agreement bound for estimators whose re-estimation
  /// path is warm-started rather than bit-stable (EM-VOTING): two estimates
  /// of the same log state reached through different estimate cadences are
  /// conforming when |a - b| <= estimate_tolerance_abs +
  /// estimate_tolerance_rel * max(|a|, |b|). Both zero (the default) means
  /// exact bit-identity is required, and the conformance / parity suites
  /// compare with EXPECT_EQ; non-zero switches those comparisons to the
  /// declared bound.
  double estimate_tolerance_abs = 0.0;
  double estimate_tolerance_rel = 0.0;
};

/// Open name -> factory registry: the extension point that replaced the
/// closed core::Method enum. Built-in estimators self-register from their
/// own .cc files (see the internal::RegisterBuiltin* hooks below — explicit
/// hook functions rather than static initializers, so registration survives
/// static-library linking and never races program start-up); library users
/// add their own estimators with Register() and select them by spec string
/// through every API that accepts one.
class EstimatorRegistry {
 public:
  struct Entry {
    /// Registry key, lower-case ("switch", "vchao92", ...).
    std::string name;
    /// Display name matching TotalErrorEstimator::name() ("SWITCH", ...).
    std::string display_name;
    /// One-line param documentation for --help style listings.
    std::string help;
    /// True when the estimator's pipeline form reads the shared positive-
    /// vote fingerprint: the pipeline maintains SharedVoteStats::positive_f
    /// iff at least one selected estimator wants it.
    bool wants_positive_fingerprint = false;
    /// True when the estimator's pipeline form reads the per-(worker, item)
    /// response matrix off the shared log (EM-VOTING). Pipelines whose
    /// panel contains no such estimator may skip maintaining the matrix on
    /// the striped ingest commit path entirely — a commit is then nothing
    /// but flat tally increments.
    bool wants_pair_counts = false;
    /// Declared metamorphic properties, checked by tests/conformance/.
    ConformanceTraits traits;
    SpecFactory factory;
  };

  EstimatorRegistry() = default;
  EstimatorRegistry(const EstimatorRegistry&) = delete;
  EstimatorRegistry& operator=(const EstimatorRegistry&) = delete;

  /// Registers an entry. AlreadyExists when the name (or an alias) is
  /// taken; InvalidArgument for an empty name or null factory.
  Status Register(Entry entry);

  /// Registers `alias` as an alternate spelling of `canonical`
  /// ("goodturing" -> "good-turing").
  Status RegisterAlias(std::string alias, std::string canonical);

  bool Contains(std::string_view name) const;

  /// Canonical (non-alias) names, sorted.
  std::vector<std::string> Names() const;

  /// The entry for `name` (alias-resolved); NotFound otherwise.
  Result<std::shared_ptr<const Entry>> Find(std::string_view name) const;

  /// Creates an estimator from a parsed spec. NotFound for unknown names,
  /// InvalidArgument for bad params.
  Result<std::unique_ptr<TotalErrorEstimator>> Create(
      const EstimatorSpec& spec, const EstimatorEnv& env) const;

  /// Parse + create in one step, standalone (no shared stats).
  Result<std::unique_ptr<TotalErrorEstimator>> Create(std::string_view spec,
                                                      size_t num_items) const;

  /// Validates `spec` now and returns an infallible EstimatorFactory bound
  /// to it — the bridge to APIs that construct estimators repeatedly
  /// (ExperimentRunner permutation replays).
  Result<EstimatorFactory> FactoryFor(std::string_view spec) const;

  /// The process-wide registry with all built-in estimators registered.
  static EstimatorRegistry& Global();

 private:
  // Reader/writer split: registration happens once at start-up, but every
  // spec parse / session open / CLI listing goes through Find/Contains —
  // those take shared locks and never serialize against each other.
  mutable SharedMutex mutex_{LockRank::kEstimatorRegistry,
                             "estimator-registry"};
  // Alias and canonical names both map to the shared entry.
  std::unordered_map<std::string, std::shared_ptr<const Entry>> entries_
      DQM_GUARDED_BY(mutex_);
  std::vector<std::string> canonical_names_
      DQM_GUARDED_BY(mutex_);  // registration order
};

namespace internal {
/// Built-in registration hooks, defined in the estimator .cc files next to
/// the estimators they register; EstimatorRegistry::Global() invokes each
/// exactly once.
void RegisterBuiltinBaselines(EstimatorRegistry& registry);   // baselines.cc
void RegisterBuiltinChaoFamily(EstimatorRegistry& registry);  // chao92.cc
void RegisterBuiltinSwitch(EstimatorRegistry& registry);      // switch_total.cc
void RegisterBuiltinEmVoting(EstimatorRegistry& registry);    // em_voting.cc
}  // namespace internal

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_REGISTRY_H_
