#ifndef DQM_ESTIMATORS_ESTIMATOR_H_
#define DQM_ESTIMATORS_ESTIMATOR_H_

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "crowd/response_log.h"
#include "crowd/vote.h"

namespace dqm::estimators {

/// Interface of every total-error estimator: consume the vote stream one
/// event at a time, answer "how many dirty items does the dataset contain"
/// at any moment (the paper's Problem 1).
///
/// Implementations keep their own compact per-item state so a full estimate
/// series over T tasks costs O(#events) amortized, not O(#events * T).
class TotalErrorEstimator {
 public:
  virtual ~TotalErrorEstimator() = default;

  /// Consumes the next vote. Events must arrive in the same order the
  /// ResponseLog received them.
  virtual void Observe(const crowd::VoteEvent& event) = 0;

  /// Current point estimate of |R_dirty|.
  virtual double Estimate() const = 0;

  /// Short display name used in reports ("CHAO92", "SWITCH", ...).
  virtual std::string_view name() const = 0;

  /// False for pipeline-attached scorers whose whole state lives in the
  /// shared vote statistics (see registry.h): the multi-estimator pipeline
  /// skips the per-event Observe() fan-out for them. Standalone estimators
  /// keep the default.
  virtual bool needs_observe() const { return true; }
};

/// Creates a fresh estimator for a universe of `num_items` items. The
/// experiment runner uses factories to evaluate each estimator on many task
/// permutations independently.
using EstimatorFactory =
    std::function<std::unique_ptr<TotalErrorEstimator>(size_t num_items)>;

/// Replays `log` into `estimator` and returns the estimate after every task
/// boundary (index t = estimate after tasks 0..t inclusive).
std::vector<double> EstimateSeriesByTask(const crowd::ResponseLog& log,
                                         TotalErrorEstimator& estimator);

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_ESTIMATOR_H_
