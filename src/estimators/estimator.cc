#include "estimators/estimator.h"

namespace dqm::estimators {

std::vector<double> EstimateSeriesByTask(const crowd::ResponseLog& log,
                                         TotalErrorEstimator& estimator) {
  std::vector<double> series;
  const auto& events = log.events();
  if (events.empty()) return series;
  uint32_t current_task = events.front().task;
  for (const crowd::VoteEvent& event : events) {
    if (event.task != current_task) {
      series.push_back(estimator.Estimate());
      current_task = event.task;
    }
    estimator.Observe(event);
  }
  series.push_back(estimator.Estimate());
  return series;
}

}  // namespace dqm::estimators
