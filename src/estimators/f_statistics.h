#ifndef DQM_ESTIMATORS_F_STATISTICS_H_
#define DQM_ESTIMATORS_F_STATISTICS_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace dqm::estimators {

/// The frequency-of-frequencies statistic ("data fingerprint") at the heart
/// of every species estimator in this library: `f(j)` is the number of
/// species observed exactly `j` times. For the error estimators a species is
/// an item marked dirty (Chao92/vChao92) or a consensus switch (SWITCH), and
/// the frequency is how often it was (re)discovered.
///
/// Stored as a flat vector indexed by frequency: `Promote` — the operation
/// every dirty vote performs — is two array increments, O(1) with no node
/// allocations (the vector only grows when a species reaches a frequency
/// never seen before, i.e. at most max-pile-depth times over a log's life).
/// Aggregate reads are O(max observed frequency), which is tiny in practice
/// (bounded by the deepest vote pile on one item).
class FStatistics {
 public:
  FStatistics() = default;

  /// Records a species observed for the first time (enters class f_1).
  void AddSingleton() {
    if (f_.size() < 2) f_.resize(2, 0);
    ++f_[1];
    ++num_species_;
    ++total_observations_;
  }

  /// Moves one species from frequency `from` to frequency `from + 1`.
  /// Requires that f(from) > 0.
  void Promote(uint32_t from) {
    DQM_CHECK_GE(from, 1u);
    DQM_CHECK(from < f_.size() && f_[from] > 0)
        << "no species at frequency " << from;
    --f_[from];
    if (from + 2 > f_.size()) f_.resize(from + 2, 0);
    ++f_[from + 1];
    ++total_observations_;
  }

  /// Removes one species of frequency `freq` entirely (used by estimator
  /// variants that forget species). Requires f(freq) > 0.
  void Remove(uint32_t freq) {
    DQM_CHECK(freq >= 1 && freq < f_.size() && f_[freq] > 0)
        << "no species at frequency " << freq;
    --f_[freq];
    --num_species_;
    total_observations_ -= freq;
  }

  /// Rebuilds the whole fingerprint from a per-species observation-count
  /// column: f_j = #entries equal to j (entries of 0 are unobserved species
  /// and contribute nothing). This is the publish-side form of the
  /// incremental AddSingleton/Promote stream — bit-identical to feeding the
  /// counts in one vote at a time — used by the striped ingest path, which
  /// defers fingerprint maintenance off the commit path and re-derives it
  /// from the reconciled tallies in one branch-light flat-array scan.
  /// Retains the vector's capacity across calls, so a fingerprint rebuilt
  /// every publish allocates only while the deepest pile is still growing.
  void RebuildFromCounts(std::span<const uint32_t> species_counts);

  /// f_j — number of species with exactly `j` observations (j >= 1).
  uint64_t f(uint32_t j) const { return j < f_.size() ? f_[j] : 0; }

  /// f_1, the singletons: the paper's key quantity.
  uint64_t singletons() const { return f(1); }

  /// c — number of distinct observed species: sum_j f_j.
  uint64_t NumSpecies() const { return num_species_; }

  /// sum_j j * f_j — total observations attached to species.
  uint64_t TotalObservations() const { return total_observations_; }

  /// sum_j j*(j-1) * f_j — the raw moment in the Chao92 skew term (Eq. 5).
  uint64_t SumIiMinus1() const;

  /// Shifted view of Section 3.3 (vChao92): treats f_{j+s} as f_j.
  struct ShiftedView {
    uint64_t f1 = 0;        // f_{1+s}
    uint64_t n = 0;         // n^{+,s} = n - sum_{i=1..s} f_i  (paper Eq. 6)
    uint64_t c = 0;         // species remaining after the shift
    uint64_t sum_ii1 = 0;   // sum_j j*(j-1) * f_{j+s}
  };
  /// Computes the shifted statistics for shift `s` given the unshifted
  /// observation total `n` (the caller chooses n = n^+ for vChao92).
  ShiftedView Shifted(uint32_t s, uint64_t n) const;

  /// The non-empty (frequency, count) classes in increasing frequency order.
  /// Built on demand — a debug/test accessor, not a hot-path one.
  std::vector<std::pair<uint32_t, uint64_t>> histogram() const;

 private:
  /// f_[j] = number of species at frequency j; index 0 unused. Never
  /// shrinks; size is bounded by the deepest vote pile plus one.
  std::vector<uint64_t> f_;
  uint64_t num_species_ = 0;
  uint64_t total_observations_ = 0;
};

/// The Chao92 point estimate (Eqs. 1-5 of the paper) from raw ingredients:
///   C_hat = 1 - f1/n            (Good-Turing sample coverage)
///   gamma2 = max((c/C_hat) * sum_ii1 / (n(n-1)) - 1, 0)
///   D_hat = c/C_hat + f1*gamma2/C_hat
/// Degenerate inputs (n == 0, or f1 == n giving C_hat == 0) fall back to
/// returning `c` — the best defensible answer with zero coverage evidence,
/// and what keeps early-task series plottable like the paper's figures.
/// `skew_correction` toggles the gamma^2 term (off = the D_noskew /
/// Good-Turing form of Eq. 3).
double Chao92Point(uint64_t c, uint64_t f1, uint64_t n, uint64_t sum_ii1,
                   bool skew_correction);

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_F_STATISTICS_H_
