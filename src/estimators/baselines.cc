#include "estimators/baselines.h"

#include "common/logging.h"

namespace dqm::estimators {

NominalEstimator::NominalEstimator(size_t num_items)
    : positive_(num_items, 0) {}

void NominalEstimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote == crowd::Vote::kDirty) {
    if (positive_[event.item] == 0) ++count_;
    ++positive_[event.item];
  }
}

VotingEstimator::VotingEstimator(size_t num_items)
    : positive_(num_items, 0), total_(num_items, 0) {}

void VotingEstimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  size_t item = event.item;
  bool was_majority = MajorityDirty(item);
  ++total_[item];
  if (event.vote == crowd::Vote::kDirty) ++positive_[item];
  bool is_majority = MajorityDirty(item);
  if (is_majority && !was_majority) ++count_;
  if (!is_majority && was_majority) --count_;
}

}  // namespace dqm::estimators
