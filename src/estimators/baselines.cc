#include "estimators/baselines.h"

#include <memory>

#include "common/logging.h"
#include "estimators/registry.h"

namespace dqm::estimators {

NominalEstimator::NominalEstimator(size_t num_items)
    : positive_(num_items, 0) {}

void NominalEstimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote == crowd::Vote::kDirty) {
    if (positive_[event.item] == 0) ++count_;
    ++positive_[event.item];
  }
}

VotingEstimator::VotingEstimator(size_t num_items)
    : positive_(num_items, 0), total_(num_items, 0) {}

void VotingEstimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  size_t item = event.item;
  bool was_majority = MajorityDirty(item);
  ++total_[item];
  if (event.vote == crowd::Vote::kDirty) ++positive_[item];
  bool is_majority = MajorityDirty(item);
  if (is_majority && !was_majority) ++count_;
  if (!is_majority && was_majority) --count_;
}

namespace {

/// Pipeline forms of the descriptive baselines: the ResponseLog already
/// maintains exactly these counts, so attached to shared stats the rows are
/// free — no per-event work, no duplicated tallies.
class SharedVotingScorer : public TotalErrorEstimator {
 public:
  explicit SharedVotingScorer(const crowd::ResponseLog* log) : log_(log) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    return static_cast<double>(log_->MajorityCount());
  }
  std::string_view name() const override { return "VOTING"; }

 private:
  const crowd::ResponseLog* log_;
};

class SharedNominalScorer : public TotalErrorEstimator {
 public:
  explicit SharedNominalScorer(const crowd::ResponseLog* log) : log_(log) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    return static_cast<double>(log_->NominalCount());
  }
  std::string_view name() const override { return "NOMINAL"; }

 private:
  const crowd::ResponseLog* log_;
};

}  // namespace

void internal::RegisterBuiltinBaselines(EstimatorRegistry& registry) {
  // The descriptive counts depend only on the per-item tallies, survive
  // whole-log duplication unchanged, and can only grow with dirty votes.
  const ConformanceTraits descriptive_traits{
      .permutation_invariant = true,
      .within_task_invariant = true,
      .duplication_invariant = true,
      .monotone_in_dirty_votes = true,
  };
  Status status = registry.Register(EstimatorRegistry::Entry{
      .name = "voting",
      .display_name = "VOTING",
      .help = "majority-consensus count (descriptive); no params",
      .traits = descriptive_traits,
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        SpecParamReader params(spec);
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (env.shared != nullptr) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedVotingScorer>(env.shared->log));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<VotingEstimator>(env.num_items));
      }});
  DQM_CHECK(status.ok()) << status.ToString();
  status = registry.Register(EstimatorRegistry::Entry{
      .name = "nominal",
      .display_name = "NOMINAL",
      .help = "at-least-one-dirty-vote count (descriptive); no params",
      .traits = descriptive_traits,
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        SpecParamReader params(spec);
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (env.shared != nullptr) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedNominalScorer>(env.shared->log));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<NominalEstimator>(env.num_items));
      }});
  DQM_CHECK(status.ok()) << status.ToString();
}

}  // namespace dqm::estimators
