#include "estimators/switch_total.h"

#include <algorithm>
#include <memory>

#include "common/stats.h"
#include "common/string_util.h"
#include "estimators/registry.h"

namespace dqm::estimators {

SwitchTotalErrorEstimator::SwitchTotalErrorEstimator(size_t num_items)
    : SwitchTotalErrorEstimator(num_items, Config()) {}

SwitchTotalErrorEstimator::SwitchTotalErrorEstimator(size_t num_items,
                                                     const Config& config)
    : config_(config), voting_(num_items), tracker_(num_items, config.tracker) {}

void SwitchTotalErrorEstimator::Observe(const crowd::VoteEvent& event) {
  if (any_event_ && event.task != current_task_) {
    majority_history_.push_back(voting_.Estimate());
    UpdateDirection();
  }
  current_task_ = event.task;
  any_event_ = true;
  voting_.Observe(event);
  tracker_.Observe(event);
}

void SwitchTotalErrorEstimator::UpdateDirection() {
  // Moving average of the most recent VOTING samples (including the live
  // value) so plateau jitter does not reach the regime detector.
  size_t window = std::max<size_t>(config_.smooth_window, 1);
  double sum = voting_.Estimate();
  size_t count = 1;
  for (size_t i = majority_history_.size();
       i > 0 && count < window; --i, ++count) {
    sum += majority_history_[i - 1];
  }
  double majority = sum / static_cast<double>(count);

  double threshold = std::max(config_.flip_threshold_abs,
                              config_.flip_threshold_rel * extreme_);
  if (direction_ >= 0) {
    extreme_ = std::max(extreme_, majority);
    if (majority <= extreme_ - threshold) {
      direction_ = -1;
      extreme_ = majority;
    }
  } else {
    extreme_ = std::min(extreme_, majority);
    if (majority >= extreme_ + threshold * config_.up_flip_factor) {
      direction_ = 1;
      extreme_ = majority;
    }
  }
}

double SwitchTotalErrorEstimator::VotingTrend() const {
  // The trend window always includes the live VOTING value so the detector
  // reacts before a task boundary is recorded.
  std::vector<double> window;
  size_t start = majority_history_.size() > config_.trend_window
                     ? majority_history_.size() - config_.trend_window
                     : 0;
  window.assign(majority_history_.begin() +
                    static_cast<std::ptrdiff_t>(start),
                majority_history_.end());
  window.push_back(voting_.Estimate());
  return Slope(window);
}

double SwitchTotalErrorEstimator::Estimate() const {
  double majority = voting_.Estimate();
  double xi_pos = tracker_.EstimateRemainingPositive();
  double xi_neg = tracker_.EstimateRemainingNegative();
  double estimate;
  if (config_.two_sided) {
    estimate = majority + xi_pos - xi_neg;
  } else {
    // Dynamic one-sided correction (Section 4.3): an improving VOTING count
    // means undiscovered errors dominate -> add remaining positive
    // switches; a shrinking count means false positives are being corrected
    // -> subtract remaining negative switches.
    estimate = (direction_ >= 0) ? majority + xi_pos : majority - xi_neg;
  }
  return std::max(estimate, 0.0);
}

namespace {

/// Builds a SWITCH Config from spec params. Every tunable of the estimator
/// and its tracker is reachable by string so saved bench configs and CLI
/// flags can express the full ablation space.
Result<SwitchTotalErrorEstimator::Config> SwitchConfigFromSpec(
    const EstimatorSpec& spec) {
  SwitchTotalErrorEstimator::Config config;
  SpecParamReader params(spec);
  // `tau` is the short spec-string spelling of the trend window; setting
  // both aliases is ambiguous and rejected.
  if (params.Has("tau") && params.Has("trend_window")) {
    return Status::InvalidArgument(
        "estimator 'switch': set only one of tau|trend_window");
  }
  DQM_ASSIGN_OR_RETURN(
      uint32_t trend_window,
      params.GetUint32("trend_window",
                       static_cast<uint32_t>(config.trend_window)));
  DQM_ASSIGN_OR_RETURN(uint32_t tau, params.GetUint32("tau", trend_window));
  config.trend_window = tau;
  DQM_ASSIGN_OR_RETURN(config.flip_threshold_abs,
                       params.GetDouble("flip_abs", config.flip_threshold_abs));
  DQM_ASSIGN_OR_RETURN(config.flip_threshold_rel,
                       params.GetDouble("flip_rel", config.flip_threshold_rel));
  DQM_ASSIGN_OR_RETURN(
      config.up_flip_factor,
      params.GetDouble("up_flip_factor", config.up_flip_factor));
  DQM_ASSIGN_OR_RETURN(
      uint32_t smooth_window,
      params.GetUint32("smooth_window",
                       static_cast<uint32_t>(config.smooth_window)));
  config.smooth_window = smooth_window;
  DQM_ASSIGN_OR_RETURN(config.two_sided,
                       params.GetBool("two_sided", config.two_sided));
  DQM_ASSIGN_OR_RETURN(
      config.tracker.skew_correction,
      params.GetBool("skew", config.tracker.skew_correction));

  DQM_ASSIGN_OR_RETURN(std::string tie_policy,
                       params.GetString("tie_policy", "tie"));
  if (tie_policy == "tie") {
    config.tracker.tie_policy = TiePolicy::kTieAsSwitch;
  } else if (tie_policy == "strict") {
    config.tracker.tie_policy = TiePolicy::kStrictMajority;
  } else {
    return Status::InvalidArgument(StrFormat(
        "estimator 'switch': tie_policy=%s (want tie|strict)",
        tie_policy.c_str()));
  }
  DQM_ASSIGN_OR_RETURN(std::string n_mode, params.GetString("n_mode", "all"));
  if (n_mode == "all") {
    config.tracker.n_mode = SwitchNMode::kAllVotes;
  } else if (n_mode == "species") {
    config.tracker.n_mode = SwitchNMode::kSpeciesSum;
  } else {
    return Status::InvalidArgument(StrFormat(
        "estimator 'switch': n_mode=%s (want all|species)", n_mode.c_str()));
  }
  DQM_ASSIGN_OR_RETURN(std::string counting,
                       params.GetString("counting", "per-switch"));
  if (counting == "per-switch") {
    config.tracker.counting = SwitchCountingMode::kPerSwitch;
  } else if (counting == "per-record") {
    config.tracker.counting = SwitchCountingMode::kPerRecord;
  } else {
    return Status::InvalidArgument(
        StrFormat("estimator 'switch': counting=%s (want per-switch|"
                  "per-record)",
                  counting.c_str()));
  }
  DQM_ASSIGN_OR_RETURN(std::string memory, params.GetString("memory", "live"));
  if (memory == "live") {
    config.tracker.memory = SwitchMemory::kLiveOnly;
  } else if (memory == "all") {
    config.tracker.memory = SwitchMemory::kAllSwitches;
  } else {
    return Status::InvalidArgument(StrFormat(
        "estimator 'switch': memory=%s (want live|all)", memory.c_str()));
  }
  DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
  return config;
}

}  // namespace

void internal::RegisterBuiltinSwitch(EstimatorRegistry& registry) {
  Status status = registry.Register(EstimatorRegistry::Entry{
      .name = "switch",
      .display_name = "SWITCH",
      .help = "the paper's SWITCH estimator; params: tau|trend_window=<uint>, "
              "flip_abs=<float>, flip_rel=<float>, up_flip_factor=<float>, "
              "smooth_window=<uint>, two_sided=<bool>, skew=<bool>, "
              "tie_policy=tie|strict, n_mode=all|species, "
              "counting=per-switch|per-record, memory=live|all",
      // SWITCH is defined over the vote *sequence* (task-order sensitive by
      // design), but items within a task are distinct, so reordering inside
      // a task preserves every per-item vote stream and the task-boundary
      // VOTING samples.
      .traits = ConformanceTraits{.within_task_invariant = true},
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        DQM_ASSIGN_OR_RETURN(SwitchTotalErrorEstimator::Config config,
                             SwitchConfigFromSpec(spec));
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<SwitchTotalErrorEstimator>(env.num_items,
                                                        config));
      }});
  DQM_CHECK(status.ok()) << status.ToString();
}

}  // namespace dqm::estimators
