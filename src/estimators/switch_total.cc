#include "estimators/switch_total.h"

#include <algorithm>

#include "common/stats.h"

namespace dqm::estimators {

SwitchTotalErrorEstimator::SwitchTotalErrorEstimator(size_t num_items)
    : SwitchTotalErrorEstimator(num_items, Config()) {}

SwitchTotalErrorEstimator::SwitchTotalErrorEstimator(size_t num_items,
                                                     const Config& config)
    : config_(config), voting_(num_items), tracker_(num_items, config.tracker) {}

void SwitchTotalErrorEstimator::Observe(const crowd::VoteEvent& event) {
  if (any_event_ && event.task != current_task_) {
    majority_history_.push_back(voting_.Estimate());
    UpdateDirection();
  }
  current_task_ = event.task;
  any_event_ = true;
  voting_.Observe(event);
  tracker_.Observe(event);
}

void SwitchTotalErrorEstimator::UpdateDirection() {
  // Moving average of the most recent VOTING samples (including the live
  // value) so plateau jitter does not reach the regime detector.
  size_t window = std::max<size_t>(config_.smooth_window, 1);
  double sum = voting_.Estimate();
  size_t count = 1;
  for (size_t i = majority_history_.size();
       i > 0 && count < window; --i, ++count) {
    sum += majority_history_[i - 1];
  }
  double majority = sum / static_cast<double>(count);

  double threshold = std::max(config_.flip_threshold_abs,
                              config_.flip_threshold_rel * extreme_);
  if (direction_ >= 0) {
    extreme_ = std::max(extreme_, majority);
    if (majority <= extreme_ - threshold) {
      direction_ = -1;
      extreme_ = majority;
    }
  } else {
    extreme_ = std::min(extreme_, majority);
    if (majority >= extreme_ + threshold * config_.up_flip_factor) {
      direction_ = 1;
      extreme_ = majority;
    }
  }
}

double SwitchTotalErrorEstimator::VotingTrend() const {
  // The trend window always includes the live VOTING value so the detector
  // reacts before a task boundary is recorded.
  std::vector<double> window;
  size_t start = majority_history_.size() > config_.trend_window
                     ? majority_history_.size() - config_.trend_window
                     : 0;
  window.assign(majority_history_.begin() +
                    static_cast<std::ptrdiff_t>(start),
                majority_history_.end());
  window.push_back(voting_.Estimate());
  return Slope(window);
}

double SwitchTotalErrorEstimator::Estimate() const {
  double majority = voting_.Estimate();
  double xi_pos = tracker_.EstimateRemainingPositive();
  double xi_neg = tracker_.EstimateRemainingNegative();
  double estimate;
  if (config_.two_sided) {
    estimate = majority + xi_pos - xi_neg;
  } else {
    // Dynamic one-sided correction (Section 4.3): an improving VOTING count
    // means undiscovered errors dominate -> add remaining positive
    // switches; a shrinking count means false positives are being corrected
    // -> subtract remaining negative switches.
    estimate = (direction_ >= 0) ? majority + xi_pos : majority - xi_neg;
  }
  return std::max(estimate, 0.0);
}

}  // namespace dqm::estimators
