#ifndef DQM_ESTIMATORS_EM_VOTING_H_
#define DQM_ESTIMATORS_EM_VOTING_H_

#include "crowd/dawid_skene.h"
#include "crowd/response_log.h"
#include "estimators/estimator.h"

namespace dqm::estimators {

/// EM-VOTING: the Dawid–Skene posterior dirty count as a (descriptive)
/// total-error estimator — the strongest label-aggregation baseline from
/// the paper's related work. Like VOTING it is not forward-looking: it can
/// only count errors that already have votes, so it lower-bounds the truth
/// under sparse coverage; unlike VOTING it downweights unreliable workers.
///
/// The fit is lazy (refreshed on Estimate() when votes arrived since) and,
/// by default, *warm-started*: each refit continues EM from the previous
/// posterior/confusion state, so a batch of new votes converges in a small
/// constant number of sweeps instead of Options::max_iterations from cold.
/// Warm-started estimates track the cold fit numerically, not bit-for-bit;
/// the registry entry declares the agreement tolerance
/// (ConformanceTraits::estimate_tolerance_abs/_rel). Construct with
/// `warm_start = false` (spec: "em-voting?warm=0") for the historical
/// cold-refit-per-estimate behavior.
///
/// Vote storage is the compacted count matrix (RetentionPolicy::kCounts):
/// memory is O(#distinct (worker, item) pairs), not O(#votes).
class EmVotingEstimator : public TotalErrorEstimator {
 public:
  EmVotingEstimator(size_t num_items, const crowd::DawidSkene::Options& options,
                    bool warm_start = true);
  explicit EmVotingEstimator(size_t num_items)
      : EmVotingEstimator(num_items, crowd::DawidSkene::Options()) {}

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override { return "EM-VOTING"; }

  /// Full EM result at the current log state (re-fit if stale).
  const crowd::DawidSkene::Result& FitResult() const;

  /// Sweeps used by the most recent refit — the warm-start regression tests
  /// assert this stays bounded by a constant as history grows.
  size_t last_fit_sweeps() const { return last_fit_sweeps_; }

 private:
  crowd::DawidSkene em_;
  crowd::ResponseLog log_;
  bool warm_start_;
  // Warm-start state + reusable scratch: refreshed when the vote count
  // changes.
  mutable crowd::DawidSkene::Result state_;
  mutable crowd::DawidSkene::Workspace workspace_;
  mutable size_t cached_at_votes_ = SIZE_MAX;
  mutable size_t last_fit_sweeps_ = 0;
};

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_EM_VOTING_H_
