#ifndef DQM_ESTIMATORS_EM_VOTING_H_
#define DQM_ESTIMATORS_EM_VOTING_H_

#include "crowd/dawid_skene.h"
#include "crowd/response_log.h"
#include "estimators/estimator.h"

namespace dqm::estimators {

/// EM-VOTING: the Dawid–Skene posterior dirty count as a (descriptive)
/// total-error estimator — the strongest label-aggregation baseline from
/// the paper's related work. Like VOTING it is not forward-looking: it can
/// only count errors that already have votes, so it lower-bounds the truth
/// under sparse coverage; unlike VOTING it downweights unreliable workers.
///
/// EM is re-fit lazily on Estimate() (cached per vote count); suitable for
/// per-task estimate series at simulation scale.
class EmVotingEstimator : public TotalErrorEstimator {
 public:
  EmVotingEstimator(size_t num_items, const crowd::DawidSkene::Options& options);
  explicit EmVotingEstimator(size_t num_items)
      : EmVotingEstimator(num_items, crowd::DawidSkene::Options()) {}

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override { return "EM-VOTING"; }

  /// Full EM result at the current log state (re-fit if stale).
  const crowd::DawidSkene::Result& FitResult() const;

 private:
  crowd::DawidSkene em_;
  crowd::ResponseLog log_;
  // Lazy fit cache: refreshed when the vote count changes.
  mutable crowd::DawidSkene::Result cached_result_;
  mutable size_t cached_at_votes_ = SIZE_MAX;
};

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_EM_VOTING_H_
