#include "estimators/switch_tracker.h"

#include <algorithm>

#include "common/logging.h"

namespace dqm::estimators {

SwitchTracker::SwitchTracker(size_t num_items)
    : SwitchTracker(num_items, Config()) {}

SwitchTracker::SwitchTracker(size_t num_items, const Config& config)
    : config_(config), items_(num_items) {}

bool SwitchTracker::DetectSwitch(const ItemState& state) const {
  const uint32_t total = state.pos + state.neg;
  switch (config_.tie_policy) {
    case TiePolicy::kTieAsSwitch:
      // Eq. (7): part (ii) — the very first vote is positive; part (i) —
      // any later tie in the running tallies.
      if (total == 1) return state.pos == 1;
      return state.pos == state.neg;
    case TiePolicy::kStrictMajority: {
      // A switch is a change of the strict-majority label. The label after
      // this vote:
      bool label_now = state.pos > state.neg;
      return label_now != state.consensus_dirty;
    }
  }
  return false;
}

void SwitchTracker::StartSwitch(ItemState& state, bool positive) {
  if (!state.has_switched) {
    state.has_switched = true;
    ++items_with_switches_;
  } else if (config_.memory == SwitchMemory::kLiveOnly &&
             state.live_freq > 0) {
    // The superseded switch leaves the fingerprint with its mass.
    if (state.live_positive) {
      positive_f_.Remove(state.live_freq);
    } else {
      negative_f_.Remove(state.live_freq);
    }
  }
  state.live_positive = positive;
  state.live_freq = 1;
  if (positive) {
    positive_f_.AddSingleton();
    ++positive_switches_;
  } else {
    negative_f_.AddSingleton();
    ++negative_switches_;
  }
}

void SwitchTracker::Rediscover(ItemState& state) {
  if (state.live_positive) {
    positive_f_.Promote(state.live_freq);
  } else {
    negative_f_.Promote(state.live_freq);
  }
  ++state.live_freq;
}

void SwitchTracker::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, items_.size());
  ItemState& state = items_[event.item];
  if (event.vote == crowd::Vote::kDirty) {
    ++state.pos;
  } else {
    ++state.neg;
  }

  if (DetectSwitch(state)) {
    // The consensus flips; the live switch (if any) freezes at its current
    // frequency and a new species is born.
    bool positive;
    switch (config_.tie_policy) {
      case TiePolicy::kTieAsSwitch:
        positive = !state.consensus_dirty;
        state.consensus_dirty = !state.consensus_dirty;
        break;
      case TiePolicy::kStrictMajority:
        positive = !state.consensus_dirty;
        state.consensus_dirty = state.pos > state.neg;
        DQM_DCHECK(state.consensus_dirty == positive);
        break;
    }
    StartSwitch(state, positive);
  } else if (state.has_switched) {
    // A vote that does not flip the consensus rediscovers the live switch.
    Rediscover(state);
  }
  // else: vote before the item's first switch — a no-op (contributes to
  // neither the f-statistics nor n), per Section 4.2.
}

bool SwitchTracker::ConsensusDirty(size_t item) const {
  DQM_CHECK_LT(item, items_.size());
  return items_[item].consensus_dirty;
}

SwitchStatistics SwitchTracker::BuildStats(const FStatistics& f,
                                           uint64_t observed_switches) const {
  SwitchStatistics stats;
  stats.observed_switches = observed_switches;
  stats.f1 = f.singletons();
  stats.sum_ii1 = f.SumIiMinus1();
  switch (config_.counting) {
    case SwitchCountingMode::kPerSwitch:
      stats.c = f.NumSpecies();
      break;
    case SwitchCountingMode::kPerRecord:
      // Only meaningful for the combined statistics; for sign-restricted
      // stats we still use the species count (the literal reading does not
      // define a sign split).
      stats.c = items_with_switches_;
      break;
  }
  switch (config_.n_mode) {
    case SwitchNMode::kAllVotes:
      stats.n = f.TotalObservations();
      break;
    case SwitchNMode::kSpeciesSum:
      stats.n = f.NumSpecies();
      break;
  }
  return stats;
}

SwitchStatistics SwitchTracker::Statistics() const {
  // Merge the sign-separated fingerprints.
  SwitchStatistics pos = BuildStats(positive_f_, positive_switches_);
  SwitchStatistics neg = BuildStats(negative_f_, negative_switches_);
  SwitchStatistics merged;
  merged.f1 = pos.f1 + neg.f1;
  merged.sum_ii1 = pos.sum_ii1 + neg.sum_ii1;
  merged.n = pos.n + neg.n;
  merged.observed_switches = TotalSwitches();
  merged.c = (config_.counting == SwitchCountingMode::kPerRecord)
                 ? items_with_switches_
                 : pos.c + neg.c;
  return merged;
}

SwitchStatistics SwitchTracker::PositiveStatistics() const {
  SwitchStatistics stats = BuildStats(positive_f_, positive_switches_);
  if (config_.counting == SwitchCountingMode::kPerRecord) {
    stats.c = positive_f_.NumSpecies();
  }
  return stats;
}

SwitchStatistics SwitchTracker::NegativeStatistics() const {
  SwitchStatistics stats = BuildStats(negative_f_, negative_switches_);
  if (config_.counting == SwitchCountingMode::kPerRecord) {
    stats.c = negative_f_.NumSpecies();
  }
  return stats;
}

namespace {
double RemainingFrom(const SwitchStatistics& stats, bool skew) {
  double total = Chao92Point(stats.c, stats.f1, stats.n, stats.sum_ii1, skew);
  double remaining = total - static_cast<double>(stats.c);
  return std::max(remaining, 0.0);
}
}  // namespace

double SwitchTracker::EstimateTotalSwitches() const {
  SwitchStatistics stats = Statistics();
  return Chao92Point(stats.c, stats.f1, stats.n, stats.sum_ii1,
                     config_.skew_correction);
}

double SwitchTracker::EstimateRemainingSwitches() const {
  // xi = D_hat - switch(I). Under the default per-switch counting the
  // species count equals switch(I); under the literal per-record reading
  // we still subtract the observed species count so the estimate remains
  // non-negative (see DESIGN.md).
  SwitchStatistics stats = Statistics();
  double total = Chao92Point(stats.c, stats.f1, stats.n, stats.sum_ii1,
                             config_.skew_correction);
  return std::max(total - static_cast<double>(stats.c), 0.0);
}

double SwitchTracker::EstimateRemainingPositive() const {
  return RemainingFrom(PositiveStatistics(), config_.skew_correction);
}

double SwitchTracker::EstimateRemainingNegative() const {
  return RemainingFrom(NegativeStatistics(), config_.skew_correction);
}

SwitchesNeeded ComputeSwitchesNeeded(const std::vector<uint32_t>& positive,
                                     const std::vector<uint32_t>& total,
                                     const std::vector<bool>& truth) {
  DQM_CHECK_EQ(positive.size(), truth.size());
  DQM_CHECK_EQ(total.size(), truth.size());
  SwitchesNeeded needed;
  for (size_t i = 0; i < truth.size(); ++i) {
    bool consensus_dirty = positive[i] * 2 > total[i];
    if (truth[i] && !consensus_dirty) ++needed.positive;
    if (!truth[i] && consensus_dirty) ++needed.negative;
  }
  return needed;
}

}  // namespace dqm::estimators
