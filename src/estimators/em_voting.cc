#include "estimators/em_voting.h"

#include <memory>

#include "estimators/registry.h"

namespace dqm::estimators {

EmVotingEstimator::EmVotingEstimator(
    size_t num_items, const crowd::DawidSkene::Options& options)
    : em_(options), log_(num_items) {}

void EmVotingEstimator::Observe(const crowd::VoteEvent& event) {
  log_.Append(event);
}

const crowd::DawidSkene::Result& EmVotingEstimator::FitResult() const {
  if (cached_at_votes_ != log_.num_events()) {
    cached_result_ = em_.Fit(log_);
    cached_at_votes_ = log_.num_events();
  }
  return cached_result_;
}

double EmVotingEstimator::Estimate() const {
  return static_cast<double>(crowd::DawidSkene::DirtyCount(FitResult()));
}

namespace {

/// Pipeline form: fits EM lazily against the pipeline's shared log instead
/// of duplicating every vote into a private copy.
class SharedEmVotingScorer : public TotalErrorEstimator {
 public:
  SharedEmVotingScorer(const crowd::ResponseLog* log,
                       const crowd::DawidSkene::Options& options)
      : em_(options), log_(log) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    if (cached_at_votes_ != log_->num_events()) {
      cached_result_ = em_.Fit(*log_);
      cached_at_votes_ = log_->num_events();
    }
    return static_cast<double>(crowd::DawidSkene::DirtyCount(cached_result_));
  }
  std::string_view name() const override { return "EM-VOTING"; }

 private:
  crowd::DawidSkene em_;
  const crowd::ResponseLog* log_;
  mutable crowd::DawidSkene::Result cached_result_;
  mutable size_t cached_at_votes_ = SIZE_MAX;
};

}  // namespace

void internal::RegisterBuiltinEmVoting(EstimatorRegistry& registry) {
  Status status = registry.Register(EstimatorRegistry::Entry{
      .name = "em-voting",
      .display_name = "EM-VOTING",
      .help = "Dawid-Skene posterior dirty count; params: max_iters=<uint>, "
              "tolerance=<float>, smoothing=<float>",
      // EM accumulates floating-point sums in event order, so even reorders
      // that preserve the per-(worker, item) counts are not bit-stable:
      // no metamorphic invariances are declared and the conformance harness
      // only applies the universal checks.
      .traits = ConformanceTraits{},
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        crowd::DawidSkene::Options options;
        SpecParamReader params(spec);
        DQM_ASSIGN_OR_RETURN(
            uint32_t max_iters,
            params.GetUint32("max_iters",
                             static_cast<uint32_t>(options.max_iterations)));
        options.max_iterations = max_iters;
        DQM_ASSIGN_OR_RETURN(options.tolerance,
                             params.GetDouble("tolerance", options.tolerance));
        DQM_ASSIGN_OR_RETURN(options.smoothing,
                             params.GetDouble("smoothing", options.smoothing));
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (env.shared != nullptr) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedEmVotingScorer>(env.shared->log,
                                                     options));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<EmVotingEstimator>(env.num_items, options));
      }});
  DQM_CHECK(status.ok()) << status.ToString();
}

}  // namespace dqm::estimators
