#include "estimators/em_voting.h"

#include <memory>

#include "estimators/registry.h"

namespace dqm::estimators {

EmVotingEstimator::EmVotingEstimator(
    size_t num_items, const crowd::DawidSkene::Options& options,
    bool warm_start)
    : em_(options),
      log_(num_items, crowd::RetentionPolicy::kCounts),
      warm_start_(warm_start) {}

void EmVotingEstimator::Observe(const crowd::VoteEvent& event) {
  log_.Append(event);
}

const crowd::DawidSkene::Result& EmVotingEstimator::FitResult() const {
  if (cached_at_votes_ != log_.num_events()) {
    if (!warm_start_) state_ = crowd::DawidSkene::Result();
    last_fit_sweeps_ = em_.FitIncremental(log_, state_, workspace_);
    cached_at_votes_ = log_.num_events();
  }
  return state_;
}

double EmVotingEstimator::Estimate() const {
  return static_cast<double>(crowd::DawidSkene::DirtyCount(FitResult()));
}

namespace {

/// Pipeline form: fits EM lazily against the pipeline's shared log instead
/// of duplicating every vote into a private copy. Carries the same
/// warm-start state across Estimate() calls as the standalone estimator.
class SharedEmVotingScorer : public TotalErrorEstimator {
 public:
  SharedEmVotingScorer(const crowd::ResponseLog* log,
                       const crowd::DawidSkene::Options& options,
                       bool warm_start)
      : em_(options), log_(log), warm_start_(warm_start) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    if (cached_at_votes_ != log_->num_events()) {
      if (!warm_start_) state_ = crowd::DawidSkene::Result();
      em_.FitIncremental(*log_, state_, workspace_);
      cached_at_votes_ = log_->num_events();
    }
    return static_cast<double>(crowd::DawidSkene::DirtyCount(state_));
  }
  std::string_view name() const override { return "EM-VOTING"; }

 private:
  crowd::DawidSkene em_;
  const crowd::ResponseLog* log_;
  bool warm_start_;
  mutable crowd::DawidSkene::Result state_;
  mutable crowd::DawidSkene::Workspace workspace_;
  mutable size_t cached_at_votes_ = SIZE_MAX;
};

}  // namespace

void internal::RegisterBuiltinEmVoting(EstimatorRegistry& registry) {
  Status status = registry.Register(EstimatorRegistry::Entry{
      .name = "em-voting",
      .display_name = "EM-VOTING",
      .help = "Dawid-Skene posterior dirty count; params: max_iters=<uint>, "
              "tolerance=<float>, smoothing=<float>, warm=<bool> (default 1: "
              "warm-start refits across estimates), warm_sweeps=<uint>",
      .wants_pair_counts = true,
      // EM accumulates floating-point sums in pair order, so even reorders
      // that preserve the per-(worker, item) counts are not bit-stable: no
      // metamorphic invariances are declared and the conformance harness
      // only applies the universal checks. Warm-started refits additionally
      // track the cold fit only numerically — the declared tolerance below
      // is what the conformance/parity suites compare against wherever two
      // estimation paths re-fit at different cadences.
      .traits = ConformanceTraits{.estimate_tolerance_abs = 2.0,
                                  .estimate_tolerance_rel = 0.02},
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        crowd::DawidSkene::Options options;
        SpecParamReader params(spec);
        DQM_ASSIGN_OR_RETURN(
            uint32_t max_iters,
            params.GetUint32("max_iters",
                             static_cast<uint32_t>(options.max_iterations)));
        options.max_iterations = max_iters;
        DQM_ASSIGN_OR_RETURN(
            uint32_t warm_sweeps,
            params.GetUint32(
                "warm_sweeps",
                static_cast<uint32_t>(options.max_incremental_sweeps)));
        options.max_incremental_sweeps = warm_sweeps;
        DQM_ASSIGN_OR_RETURN(options.tolerance,
                             params.GetDouble("tolerance", options.tolerance));
        DQM_ASSIGN_OR_RETURN(options.smoothing,
                             params.GetDouble("smoothing", options.smoothing));
        DQM_ASSIGN_OR_RETURN(bool warm, params.GetBool("warm", true));
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (options.max_iterations == 0 || options.max_incremental_sweeps == 0) {
          return Status::InvalidArgument(
              "em-voting: max_iters and warm_sweeps must be positive");
        }
        if (env.shared != nullptr) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedEmVotingScorer>(env.shared->log, options,
                                                     warm));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<EmVotingEstimator>(env.num_items, options, warm));
      }});
  DQM_CHECK(status.ok()) << status.ToString();
}

}  // namespace dqm::estimators
