#include "estimators/em_voting.h"

namespace dqm::estimators {

EmVotingEstimator::EmVotingEstimator(
    size_t num_items, const crowd::DawidSkene::Options& options)
    : em_(options), log_(num_items) {}

void EmVotingEstimator::Observe(const crowd::VoteEvent& event) {
  log_.Append(event);
}

const crowd::DawidSkene::Result& EmVotingEstimator::FitResult() const {
  if (cached_at_votes_ != log_.num_events()) {
    cached_result_ = em_.Fit(log_);
    cached_at_votes_ = log_.num_events();
  }
  return cached_result_;
}

double EmVotingEstimator::Estimate() const {
  return static_cast<double>(crowd::DawidSkene::DirtyCount(FitResult()));
}

}  // namespace dqm::estimators
