#include "estimators/extrapolation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"

namespace dqm::estimators {

double ExtrapolateTotal(size_t errors_in_sample, size_t sample_size,
                        size_t population_size) {
  DQM_CHECK_GT(sample_size, 0u);
  double fraction = static_cast<double>(sample_size) /
                    static_cast<double>(population_size);
  return static_cast<double>(errors_in_sample) / fraction;
}

double ExtrapolateRemaining(size_t errors_in_sample, size_t sample_size,
                            size_t population_size) {
  return ExtrapolateTotal(errors_in_sample, sample_size, population_size) -
         static_cast<double>(errors_in_sample);
}

double OracleExtrapolationTrial(const std::vector<bool>& truth,
                                size_t sample_size, Rng& rng) {
  DQM_CHECK_GT(sample_size, 0u);
  DQM_CHECK_LE(sample_size, truth.size());
  std::vector<size_t> sample = rng.SampleIndices(truth.size(), sample_size);
  size_t errors = 0;
  for (size_t index : sample) {
    if (truth[index]) ++errors;
  }
  return ExtrapolateTotal(errors, sample_size, truth.size());
}

ExtrapolationBand OracleExtrapolationBand(const std::vector<bool>& truth,
                                          double sample_fraction,
                                          size_t trials, Rng& rng) {
  DQM_CHECK(sample_fraction > 0.0 && sample_fraction <= 1.0);
  auto sample_size = static_cast<size_t>(
      sample_fraction * static_cast<double>(truth.size()));
  sample_size = std::max<size_t>(sample_size, 1);
  std::vector<double> estimates;
  estimates.reserve(trials);
  for (size_t t = 0; t < trials; ++t) {
    estimates.push_back(OracleExtrapolationTrial(truth, sample_size, rng));
  }
  return ExtrapolationBand{Mean(estimates), StdDev(estimates)};
}

}  // namespace dqm::estimators
