#ifndef DQM_ESTIMATORS_SWITCH_TOTAL_H_
#define DQM_ESTIMATORS_SWITCH_TOTAL_H_

#include <cstdint>
#include <vector>

#include "estimators/baselines.h"
#include "estimators/estimator.h"
#include "estimators/switch_tracker.h"

namespace dqm::estimators {

/// SWITCH — the paper's headline estimator (Section 4.3): corrects the
/// majority consensus VOTING by the estimated number of remaining consensus
/// switches.
///
///   estimate = majority(I) + xi+        when VOTING is trending up
///   estimate = majority(I) - xi-        when VOTING is trending down
///   estimate = majority(I) + xi+ - xi-  (two-sided ablation mode)
///
/// The trend is the OLS slope of the VOTING count over the most recent
/// `trend_window` task boundaries; a non-negative slope selects the positive
/// branch (the paper's monotone-improvement argument: one-sided correction
/// keeps SWITCH at least as good as VOTING).
class SwitchTotalErrorEstimator : public TotalErrorEstimator {
 public:
  struct Config {
    SwitchTracker::Config tracker;
    /// Number of most-recent per-task VOTING samples in the diagnostic
    /// trend slope (VotingTrend()).
    size_t trend_window = 100;
    /// CUSUM-style regime detection: the correction direction flips only
    /// when the *smoothed* VOTING count retreats from its running extreme
    /// (max while trending up, min while trending down) by more than
    /// max(flip_threshold_abs, flip_threshold_rel * extreme) items. This
    /// keeps +/-1 count jitter on plateaus from toggling the correction.
    double flip_threshold_abs = 3.0;
    double flip_threshold_rel = 0.05;
    /// Upward flips (down -> up) must clear the threshold scaled by this
    /// factor. Asymmetric because the paper's premise is that the majority
    /// consensus improves monotonically: once corrections dominate (VOTING
    /// falling), transient upward jitter from fresh false positives should
    /// not re-select the positive branch.
    double up_flip_factor = 2.0;
    /// Moving-average window (in task boundaries) applied to VOTING before
    /// the regime detector sees it.
    size_t smooth_window = 10;
    /// Ablation: always apply both corrections instead of the dynamic
    /// one-sided choice.
    bool two_sided = false;
  };

  explicit SwitchTotalErrorEstimator(size_t num_items);
  SwitchTotalErrorEstimator(size_t num_items, const Config& config);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override { return "SWITCH"; }

  /// xi+ / xi- — the remaining-switch estimates (Figures 3-5 (b) and (c)).
  double RemainingPositive() const {
    return tracker_.EstimateRemainingPositive();
  }
  double RemainingNegative() const {
    return tracker_.EstimateRemainingNegative();
  }

  /// Current VOTING count (the quantity being corrected).
  double MajorityCount() const { return voting_.Estimate(); }

  /// Slope of the recent VOTING history (exposed for diagnostics/tests).
  double VotingTrend() const;

  /// The current one-sided correction direction: +1 -> majority + xi+,
  /// -1 -> majority - xi-. Re-evaluated at every task boundary with
  /// hysteresis (an exactly-flat window keeps the previous direction), so
  /// noisy plateaus do not flip the correction back and forth.
  int direction() const { return direction_; }

  const SwitchTracker& tracker() const { return tracker_; }

 private:
  void UpdateDirection();

  Config config_;
  VotingEstimator voting_;
  SwitchTracker tracker_;
  /// VOTING count sampled at each completed task boundary.
  std::vector<double> majority_history_;
  uint32_t current_task_ = 0;
  bool any_event_ = false;
  int direction_ = 1;
  /// Running extreme of VOTING since the last direction flip (max while
  /// direction_ == +1, min while -1).
  double extreme_ = 0.0;
};

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_SWITCH_TOTAL_H_
