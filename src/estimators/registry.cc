#include "estimators/registry.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace dqm::estimators {

std::string EstimatorSpec::ToString() const {
  std::string out = name;
  for (size_t i = 0; i < params.size(); ++i) {
    out += i == 0 ? '?' : '&';
    out += params[i].first;
    out += '=';
    out += params[i].second;
  }
  return out;
}

Result<EstimatorSpec> ParseEstimatorSpec(std::string_view spec) {
  std::string_view trimmed = StripWhitespace(spec);
  EstimatorSpec parsed;
  size_t question = trimmed.find('?');
  parsed.name = ToLower(StripWhitespace(trimmed.substr(0, question)));
  if (parsed.name.empty()) {
    return Status::InvalidArgument(
        StrFormat("spec '%.*s' has no name",
                  static_cast<int>(spec.size()), spec.data()));
  }
  if (question == std::string_view::npos) return parsed;

  for (const std::string& param :
       Split(trimmed.substr(question + 1), '&')) {
    std::string_view stripped = StripWhitespace(param);
    if (stripped.empty()) continue;
    size_t equals = stripped.find('=');
    if (equals == std::string_view::npos || equals == 0) {
      return Status::InvalidArgument(StrFormat(
          "spec '%.*s': param '%s' is not key=value",
          static_cast<int>(spec.size()), spec.data(),
          std::string(stripped).c_str()));
    }
    std::string key = ToLower(StripWhitespace(stripped.substr(0, equals)));
    std::string value{StripWhitespace(stripped.substr(equals + 1))};
    for (const auto& [existing, unused] : parsed.params) {
      if (existing == key) {
        return Status::InvalidArgument(StrFormat(
            "spec '%.*s': duplicate param '%s'",
            static_cast<int>(spec.size()), spec.data(), key.c_str()));
      }
    }
    parsed.params.emplace_back(std::move(key), std::move(value));
  }
  return parsed;
}

std::vector<std::string> SplitSpecList(std::string_view list) {
  std::vector<std::string> specs;
  for (const std::string& part : Split(list, ',')) {
    std::string_view stripped = StripWhitespace(part);
    if (!stripped.empty()) specs.emplace_back(stripped);
  }
  return specs;
}

SpecParamReader::SpecParamReader(const EstimatorSpec& spec)
    : spec_(spec), consumed_(spec.params.size(), false) {}

const std::string* SpecParamReader::Consume(std::string_view key) {
  for (size_t i = 0; i < spec_.params.size(); ++i) {
    if (spec_.params[i].first == key) {
      consumed_[i] = true;
      return &spec_.params[i].second;
    }
  }
  return nullptr;
}

Result<uint32_t> SpecParamReader::GetUint32(std::string_view key,
                                            uint32_t fallback) {
  const std::string* raw = Consume(key);
  if (raw == nullptr) return fallback;
  if (!IsDigits(*raw)) {
    return Status::InvalidArgument(
        StrFormat("spec '%s': param %s=%s is not a non-negative integer",
                  spec_.name.c_str(), std::string(key).c_str(), raw->c_str()));
  }
  errno = 0;
  unsigned long long value = std::strtoull(raw->c_str(), nullptr, 10);
  if (errno != 0 || value > UINT32_MAX) {
    return Status::InvalidArgument(
        StrFormat("spec '%s': param %s=%s is out of range",
                  spec_.name.c_str(), std::string(key).c_str(), raw->c_str()));
  }
  return static_cast<uint32_t>(value);
}

Result<double> SpecParamReader::GetDouble(std::string_view key,
                                          double fallback) {
  const std::string* raw = Consume(key);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(raw->c_str(), &end);
  if (errno != 0 || end == raw->c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StrFormat("spec '%s': param %s=%s is not a number",
                  spec_.name.c_str(), std::string(key).c_str(), raw->c_str()));
  }
  return value;
}

Result<bool> SpecParamReader::GetBool(std::string_view key, bool fallback) {
  const std::string* raw = Consume(key);
  if (raw == nullptr) return fallback;
  std::string value = ToLower(*raw);
  if (value == "1" || value == "true" || value == "yes") return true;
  if (value == "0" || value == "false" || value == "no") return false;
  return Status::InvalidArgument(
      StrFormat("spec '%s': param %s=%s is not a boolean (1/0/true/false)",
                spec_.name.c_str(), std::string(key).c_str(), raw->c_str()));
}

Result<std::string> SpecParamReader::GetString(std::string_view key,
                                               std::string_view fallback) {
  const std::string* raw = Consume(key);
  if (raw == nullptr) return std::string(fallback);
  return ToLower(*raw);
}

bool SpecParamReader::Has(std::string_view key) const {
  for (const auto& [existing, unused] : spec_.params) {
    if (existing == key) return true;
  }
  return false;
}

Status SpecParamReader::VerifyAllConsumed() const {
  std::vector<std::string> unknown;
  for (size_t i = 0; i < spec_.params.size(); ++i) {
    if (!consumed_[i]) unknown.push_back(spec_.params[i].first);
  }
  if (unknown.empty()) return Status::OK();
  return Status::InvalidArgument(
      StrFormat("spec '%s': unknown param(s): %s", spec_.name.c_str(),
                Join(unknown, ", ").c_str()));
}

Status EstimatorRegistry::Register(Entry entry) {
  if (entry.name.empty()) {
    return Status::InvalidArgument("estimator name must be non-empty");
  }
  if (!entry.factory) {
    return Status::InvalidArgument(
        StrFormat("estimator '%s': null factory", entry.name.c_str()));
  }
  std::string name = ToLower(entry.name);
  entry.name = name;
  WriterMutexLock lock(mutex_);
  auto shared = std::make_shared<const Entry>(std::move(entry));
  auto [it, inserted] = entries_.emplace(name, std::move(shared));
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("estimator '%s' is already registered", name.c_str()));
  }
  canonical_names_.push_back(name);
  return Status::OK();
}

Status EstimatorRegistry::RegisterAlias(std::string alias,
                                        std::string canonical) {
  std::string alias_name = ToLower(alias);
  std::string canonical_name = ToLower(canonical);
  WriterMutexLock lock(mutex_);
  auto it = entries_.find(canonical_name);
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat("estimator '%s' is not registered",
                                      canonical_name.c_str()));
  }
  auto [unused, inserted] = entries_.emplace(alias_name, it->second);
  if (!inserted) {
    return Status::AlreadyExists(
        StrFormat("estimator '%s' is already registered", alias_name.c_str()));
  }
  return Status::OK();
}

bool EstimatorRegistry::Contains(std::string_view name) const {
  ReaderMutexLock lock(mutex_);
  return entries_.find(ToLower(name)) != entries_.end();
}

std::vector<std::string> EstimatorRegistry::Names() const {
  ReaderMutexLock lock(mutex_);
  std::vector<std::string> names = canonical_names_;
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::shared_ptr<const EstimatorRegistry::Entry>>
EstimatorRegistry::Find(std::string_view name) const {
  ReaderMutexLock lock(mutex_);
  auto it = entries_.find(ToLower(name));
  if (it == entries_.end()) {
    return Status::NotFound(StrFormat(
        "unknown estimator '%s' (registered: %s)",
        std::string(name).c_str(), Join(canonical_names_, ", ").c_str()));
  }
  return it->second;
}

Result<std::unique_ptr<TotalErrorEstimator>> EstimatorRegistry::Create(
    const EstimatorSpec& spec, const EstimatorEnv& env) const {
  DQM_ASSIGN_OR_RETURN(std::shared_ptr<const Entry> entry, Find(spec.name));
  return entry->factory(env, spec);
}

Result<std::unique_ptr<TotalErrorEstimator>> EstimatorRegistry::Create(
    std::string_view spec, size_t num_items) const {
  DQM_ASSIGN_OR_RETURN(EstimatorSpec parsed, ParseEstimatorSpec(spec));
  return Create(parsed, EstimatorEnv{num_items, nullptr});
}

Result<EstimatorFactory> EstimatorRegistry::FactoryFor(
    std::string_view spec) const {
  DQM_ASSIGN_OR_RETURN(EstimatorSpec parsed, ParseEstimatorSpec(spec));
  DQM_ASSIGN_OR_RETURN(std::shared_ptr<const Entry> entry, Find(parsed.name));
  // Validate the params once, against a tiny universe, so a bad spec fails
  // here instead of aborting mid-experiment.
  DQM_RETURN_NOT_OK(
      entry->factory(EstimatorEnv{1, nullptr}, parsed).status());
  return EstimatorFactory(
      [entry, parsed](size_t num_items)
          -> std::unique_ptr<TotalErrorEstimator> {
        Result<std::unique_ptr<TotalErrorEstimator>> estimator =
            entry->factory(EstimatorEnv{num_items, nullptr}, parsed);
        DQM_CHECK(estimator.ok()) << estimator.status().ToString();
        return std::move(estimator).value();
      });
}

EstimatorRegistry& EstimatorRegistry::Global() {
  static EstimatorRegistry* registry = [] {
    auto* r = new EstimatorRegistry();
    internal::RegisterBuiltinBaselines(*r);
    internal::RegisterBuiltinChaoFamily(*r);
    internal::RegisterBuiltinSwitch(*r);
    internal::RegisterBuiltinEmVoting(*r);
    return r;
  }();
  return *registry;
}

}  // namespace dqm::estimators
