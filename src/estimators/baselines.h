#ifndef DQM_ESTIMATORS_BASELINES_H_
#define DQM_ESTIMATORS_BASELINES_H_

#include <cstdint>
#include <vector>

#include "estimators/estimator.h"

namespace dqm::estimators {

/// NOMINAL (Section 2.2.1): counts the records marked dirty by at least one
/// worker. Descriptive — neither forward-looking nor robust to false
/// positives.
class NominalEstimator : public TotalErrorEstimator {
 public:
  explicit NominalEstimator(size_t num_items);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override { return static_cast<double>(count_); }
  std::string_view name() const override { return "NOMINAL"; }

 private:
  std::vector<uint32_t> positive_;
  size_t count_ = 0;
};

/// VOTING (Section 2.2.2): the current majority consensus — records where
/// strictly more workers said dirty than clean. The paper's strongest
/// descriptive baseline and the quantity the SWITCH estimator corrects.
class VotingEstimator : public TotalErrorEstimator {
 public:
  explicit VotingEstimator(size_t num_items);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override { return static_cast<double>(count_); }
  std::string_view name() const override { return "VOTING"; }

  /// c_majority as an integer (used by vChao92).
  size_t MajorityCount() const { return count_; }

 private:
  bool MajorityDirty(size_t item) const {
    return positive_[item] * 2 > total_[item];
  }

  std::vector<uint32_t> positive_;
  std::vector<uint32_t> total_;
  size_t count_ = 0;
};

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_BASELINES_H_
