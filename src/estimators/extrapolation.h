#ifndef DQM_ESTIMATORS_EXTRAPOLATION_H_
#define DQM_ESTIMATORS_EXTRAPOLATION_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace dqm::estimators {

/// The EXTRAPOL baseline (Section 2.2.3): clean a sample "perfectly",
/// extrapolate its error rate to the population:
///   total_errors = errors_in_sample / sampling_fraction
/// Requires sample_size > 0.
double ExtrapolateTotal(size_t errors_in_sample, size_t sample_size,
                        size_t population_size);

/// Remaining (undetected) errors implied by the extrapolation:
/// total - errors_in_sample.
double ExtrapolateRemaining(size_t errors_in_sample, size_t sample_size,
                            size_t population_size);

/// One oracle extrapolation trial: samples `sample_size` items uniformly
/// without replacement, counts true errors via the ground-truth oracle, and
/// extrapolates. This is the idealized upper bound of the baseline — the
/// paper's point is that even *with* an oracle the estimate is unstable for
/// rare errors.
double OracleExtrapolationTrial(const std::vector<bool>& truth,
                                size_t sample_size, Rng& rng);

/// Mean and +/- one standard deviation of `trials` oracle extrapolations —
/// the EXTRAPOL band drawn in Figures 3-5.
struct ExtrapolationBand {
  double mean = 0.0;
  double std_dev = 0.0;
};
ExtrapolationBand OracleExtrapolationBand(const std::vector<bool>& truth,
                                          double sample_fraction,
                                          size_t trials, Rng& rng);

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_EXTRAPOLATION_H_
