#ifndef DQM_ESTIMATORS_CHAO92_H_
#define DQM_ESTIMATORS_CHAO92_H_

#include <cstdint>
#include <vector>

#include "estimators/baselines.h"
#include "estimators/estimator.h"
#include "estimators/f_statistics.h"

namespace dqm::estimators {

/// Chao92 applied to error estimation (Section 3.2): species = distinct
/// records marked dirty, frequency = number of dirty votes a record has
/// received, n = n^+ (positive votes only; clean votes are no-ops under the
/// no-false-positive model).
///
///   D_hat = c / C_hat + f1 * gamma^2 / C_hat,   C_hat = 1 - f1 / n^+
///
/// `skew_correction` off gives the D_noskew / Good-Turing form (Eq. 3).
/// As the paper shows, this estimator is accurate without false positives
/// and overestimates badly with them (the singleton-error entanglement).
class Chao92Estimator : public TotalErrorEstimator {
 public:
  explicit Chao92Estimator(size_t num_items, bool skew_correction = true);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override {
    return skew_correction_ ? "CHAO92" : "GOOD-TURING";
  }

  const FStatistics& f_statistics() const { return f_; }

 private:
  std::vector<uint32_t> positive_;
  FStatistics f_;
  bool skew_correction_;
};

/// Chao1 species lower bound (bias-corrected form):
///   D = c + f1 * (f1 - 1) / (2 * (f2 + 1)).
/// The classic abundance-based estimator from the ecology literature; not
/// in the paper's evaluation but the natural extra baseline — it shares
/// Chao92's singleton sensitivity (and therefore its false-positive
/// fragility), which the robustness ablation quantifies.
class Chao1Estimator : public TotalErrorEstimator {
 public:
  explicit Chao1Estimator(size_t num_items);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override { return "CHAO1"; }

 private:
  std::vector<uint32_t> positive_;
  FStatistics f_;
};

/// First-order jackknife species estimator, D_jk1 = c + f1 * (n-1)/n.
/// Not part of the paper's evaluation; included as an additional species
/// baseline for the robustness ablation (same f-statistics, different
/// functional form, same singleton sensitivity).
class JackknifeEstimator : public TotalErrorEstimator {
 public:
  explicit JackknifeEstimator(size_t num_items);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override { return "JACKKNIFE1"; }

 private:
  std::vector<uint32_t> positive_;
  FStatistics f_;
};

/// vChao92 (Section 3.3): Chao92 made more robust to false positives by
/// (a) using c_majority instead of c_nominal and (b) shifting the
/// f-statistics by `s` — f_{1+s} plays the role of f_1 and
/// n^{+,s} = n^+ - sum_{i<=s} f_i. Converges more slowly and requires
/// choosing `s`; may not converge to the ground truth at all (the
/// shortcomings that motivate SWITCH).
class VChao92Estimator : public TotalErrorEstimator {
 public:
  explicit VChao92Estimator(size_t num_items, uint32_t shift = 1,
                            bool skew_correction = true);

  void Observe(const crowd::VoteEvent& event) override;
  double Estimate() const override;
  std::string_view name() const override { return "V-CHAO"; }

  uint32_t shift() const { return shift_; }

 private:
  VotingEstimator voting_;
  std::vector<uint32_t> positive_;
  FStatistics f_;
  uint64_t total_positive_ = 0;
  uint32_t shift_;
  bool skew_correction_;
};

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_CHAO92_H_
