#include "estimators/chao92.h"

#include "common/logging.h"

namespace dqm::estimators {

Chao92Estimator::Chao92Estimator(size_t num_items, bool skew_correction)
    : positive_(num_items, 0), skew_correction_(skew_correction) {}

void Chao92Estimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote != crowd::Vote::kDirty) return;  // clean votes are no-ops
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
}

double Chao92Estimator::Estimate() const {
  return Chao92Point(f_.NumSpecies(), f_.singletons(),
                     f_.TotalObservations(), f_.SumIiMinus1(),
                     skew_correction_);
}

Chao1Estimator::Chao1Estimator(size_t num_items) : positive_(num_items, 0) {}

void Chao1Estimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote != crowd::Vote::kDirty) return;
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
}

double Chao1Estimator::Estimate() const {
  double c = static_cast<double>(f_.NumSpecies());
  double f1 = static_cast<double>(f_.singletons());
  double f2 = static_cast<double>(f_.f(2));
  return c + f1 * (f1 - 1.0) / (2.0 * (f2 + 1.0));
}

JackknifeEstimator::JackknifeEstimator(size_t num_items)
    : positive_(num_items, 0) {}

void JackknifeEstimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote != crowd::Vote::kDirty) return;
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
}

double JackknifeEstimator::Estimate() const {
  uint64_t n = f_.TotalObservations();
  if (n == 0) return 0.0;
  double nd = static_cast<double>(n);
  return static_cast<double>(f_.NumSpecies()) +
         static_cast<double>(f_.singletons()) * (nd - 1.0) / nd;
}

VChao92Estimator::VChao92Estimator(size_t num_items, uint32_t shift,
                                   bool skew_correction)
    : voting_(num_items),
      positive_(num_items, 0),
      shift_(shift),
      skew_correction_(skew_correction) {}

void VChao92Estimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  voting_.Observe(event);
  if (event.vote != crowd::Vote::kDirty) return;
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
  ++total_positive_;
}

double VChao92Estimator::Estimate() const {
  FStatistics::ShiftedView view = f_.Shifted(shift_, total_positive_);
  // c_majority replaces c_nominal (Eq. 6); the f-statistics and the skew
  // term come from the shifted fingerprint.
  uint64_t c = voting_.MajorityCount();
  if (c == 0) {
    // No majority-dirty records yet; fall back to the shifted species count
    // so the estimate is still defined in the earliest tasks.
    c = view.c;
  }
  return Chao92Point(c, view.f1, view.n, view.sum_ii1, skew_correction_);
}

}  // namespace dqm::estimators
