#include "estimators/chao92.h"

#include <memory>

#include "common/logging.h"
#include "estimators/registry.h"

namespace dqm::estimators {

Chao92Estimator::Chao92Estimator(size_t num_items, bool skew_correction)
    : positive_(num_items, 0), skew_correction_(skew_correction) {}

void Chao92Estimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote != crowd::Vote::kDirty) return;  // clean votes are no-ops
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
}

double Chao92Estimator::Estimate() const {
  return Chao92Point(f_.NumSpecies(), f_.singletons(),
                     f_.TotalObservations(), f_.SumIiMinus1(),
                     skew_correction_);
}

Chao1Estimator::Chao1Estimator(size_t num_items) : positive_(num_items, 0) {}

void Chao1Estimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote != crowd::Vote::kDirty) return;
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
}

double Chao1Estimator::Estimate() const {
  double c = static_cast<double>(f_.NumSpecies());
  double f1 = static_cast<double>(f_.singletons());
  double f2 = static_cast<double>(f_.f(2));
  return c + f1 * (f1 - 1.0) / (2.0 * (f2 + 1.0));
}

JackknifeEstimator::JackknifeEstimator(size_t num_items)
    : positive_(num_items, 0) {}

void JackknifeEstimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  if (event.vote != crowd::Vote::kDirty) return;
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
}

double JackknifeEstimator::Estimate() const {
  uint64_t n = f_.TotalObservations();
  if (n == 0) return 0.0;
  double nd = static_cast<double>(n);
  return static_cast<double>(f_.NumSpecies()) +
         static_cast<double>(f_.singletons()) * (nd - 1.0) / nd;
}

VChao92Estimator::VChao92Estimator(size_t num_items, uint32_t shift,
                                   bool skew_correction)
    : voting_(num_items),
      positive_(num_items, 0),
      shift_(shift),
      skew_correction_(skew_correction) {}

void VChao92Estimator::Observe(const crowd::VoteEvent& event) {
  DQM_CHECK_LT(event.item, positive_.size());
  voting_.Observe(event);
  if (event.vote != crowd::Vote::kDirty) return;
  uint32_t& count = positive_[event.item];
  if (count == 0) {
    f_.AddSingleton();
  } else {
    f_.Promote(count);
  }
  ++count;
  ++total_positive_;
}

double VChao92Estimator::Estimate() const {
  FStatistics::ShiftedView view = f_.Shifted(shift_, total_positive_);
  // c_majority replaces c_nominal (Eq. 6); the f-statistics and the skew
  // term come from the shifted fingerprint.
  uint64_t c = voting_.MajorityCount();
  if (c == 0) {
    // No majority-dirty records yet; fall back to the shifted species count
    // so the estimate is still defined in the earliest tasks.
    c = view.c;
  }
  return Chao92Point(c, view.f1, view.n, view.sum_ii1, skew_correction_);
}

namespace {

/// Pipeline forms of the species-family estimators: Chao92, Good-Turing,
/// Chao1, Jackknife1 and vChao92 all consume the exact same positive-vote
/// fingerprint, so attached to shared stats they are pure scorers — the
/// pipeline maintains one FStatistics and each row only differs in how it
/// turns the fingerprint into an estimate.
class SharedChao92Scorer : public TotalErrorEstimator {
 public:
  SharedChao92Scorer(const FStatistics* f, bool skew_correction)
      : f_(f), skew_correction_(skew_correction) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    return Chao92Point(f_->NumSpecies(), f_->singletons(),
                       f_->TotalObservations(), f_->SumIiMinus1(),
                       skew_correction_);
  }
  std::string_view name() const override {
    return skew_correction_ ? "CHAO92" : "GOOD-TURING";
  }

 private:
  const FStatistics* f_;
  bool skew_correction_;
};

class SharedChao1Scorer : public TotalErrorEstimator {
 public:
  explicit SharedChao1Scorer(const FStatistics* f) : f_(f) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    double c = static_cast<double>(f_->NumSpecies());
    double f1 = static_cast<double>(f_->singletons());
    double f2 = static_cast<double>(f_->f(2));
    return c + f1 * (f1 - 1.0) / (2.0 * (f2 + 1.0));
  }
  std::string_view name() const override { return "CHAO1"; }

 private:
  const FStatistics* f_;
};

class SharedJackknifeScorer : public TotalErrorEstimator {
 public:
  explicit SharedJackknifeScorer(const FStatistics* f) : f_(f) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    uint64_t n = f_->TotalObservations();
    if (n == 0) return 0.0;
    double nd = static_cast<double>(n);
    return static_cast<double>(f_->NumSpecies()) +
           static_cast<double>(f_->singletons()) * (nd - 1.0) / nd;
  }
  std::string_view name() const override { return "JACKKNIFE1"; }

 private:
  const FStatistics* f_;
};

class SharedVChao92Scorer : public TotalErrorEstimator {
 public:
  SharedVChao92Scorer(const crowd::ResponseLog* log, const FStatistics* f,
                      uint32_t shift, bool skew_correction)
      : log_(log), f_(f), shift_(shift), skew_correction_(skew_correction) {}
  void Observe(const crowd::VoteEvent&) override {}
  bool needs_observe() const override { return false; }
  double Estimate() const override {
    FStatistics::ShiftedView view =
        f_->Shifted(shift_, log_->total_positive_votes());
    uint64_t c = log_->MajorityCount();
    if (c == 0) c = view.c;
    return Chao92Point(c, view.f1, view.n, view.sum_ii1, skew_correction_);
  }
  std::string_view name() const override { return "V-CHAO"; }

 private:
  const crowd::ResponseLog* log_;
  const FStatistics* f_;
  uint32_t shift_;
  bool skew_correction_;
};

/// True when the env provides a maintained positive-vote fingerprint.
bool HasSharedFingerprint(const EstimatorEnv& env) {
  return env.shared != nullptr && env.shared->positive_f != nullptr;
}

template <typename Standalone, typename Scorer>
Result<std::unique_ptr<TotalErrorEstimator>> MakeFingerprintEstimator(
    const EstimatorEnv& env, const EstimatorSpec& spec) {
  SpecParamReader params(spec);
  DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
  if (HasSharedFingerprint(env)) {
    return std::unique_ptr<TotalErrorEstimator>(
        std::make_unique<Scorer>(env.shared->positive_f));
  }
  return std::unique_ptr<TotalErrorEstimator>(
      std::make_unique<Standalone>(env.num_items));
}

}  // namespace

void internal::RegisterBuiltinChaoFamily(EstimatorRegistry& registry) {
  // Every member of the species family scores a function of the per-item
  // dirty-vote counts: task-order permutations cannot change the estimate.
  // Duplicating the log *does* (coverage rises), so that flag stays off.
  constexpr ConformanceTraits kFingerprintTraits{
      .permutation_invariant = true,
      .within_task_invariant = true,
      .duplication_invariant = false,
      .monotone_in_dirty_votes = false,
  };
  auto check = [](Status status) { DQM_CHECK(status.ok()) << status.ToString(); };
  check(registry.Register(EstimatorRegistry::Entry{
      .name = "chao92",
      .display_name = "CHAO92",
      .help = "Chao92 species estimate with skew correction; no params",
      .wants_positive_fingerprint = true,
      .traits = kFingerprintTraits,
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        SpecParamReader params(spec);
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (HasSharedFingerprint(env)) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedChao92Scorer>(env.shared->positive_f,
                                                   true));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<Chao92Estimator>(env.num_items, true));
      }}));
  check(registry.Register(EstimatorRegistry::Entry{
      .name = "good-turing",
      .display_name = "GOOD-TURING",
      .help = "Chao92 without the skew correction (Eq. 3); no params",
      .wants_positive_fingerprint = true,
      .traits = kFingerprintTraits,
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        SpecParamReader params(spec);
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (HasSharedFingerprint(env)) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedChao92Scorer>(env.shared->positive_f,
                                                   false));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<Chao92Estimator>(env.num_items, false));
      }}));
  check(registry.RegisterAlias("goodturing", "good-turing"));
  check(registry.Register(EstimatorRegistry::Entry{
      .name = "vchao92",
      .display_name = "V-CHAO",
      .help = "voting-based shifted Chao92; params: shift=<uint> (default 1), "
              "skew=<bool> (default 1)",
      .wants_positive_fingerprint = true,
      .traits = kFingerprintTraits,
      .factory = [](const EstimatorEnv& env, const EstimatorSpec& spec)
          -> Result<std::unique_ptr<TotalErrorEstimator>> {
        SpecParamReader params(spec);
        DQM_ASSIGN_OR_RETURN(uint32_t shift, params.GetUint32("shift", 1));
        DQM_ASSIGN_OR_RETURN(bool skew, params.GetBool("skew", true));
        DQM_RETURN_NOT_OK(params.VerifyAllConsumed());
        if (HasSharedFingerprint(env)) {
          return std::unique_ptr<TotalErrorEstimator>(
              std::make_unique<SharedVChao92Scorer>(
                  env.shared->log, env.shared->positive_f, shift, skew));
        }
        return std::unique_ptr<TotalErrorEstimator>(
            std::make_unique<VChao92Estimator>(env.num_items, shift, skew));
      }}));
  check(registry.RegisterAlias("v-chao", "vchao92"));
  check(registry.Register(EstimatorRegistry::Entry{
      .name = "chao1",
      .display_name = "CHAO1",
      .help = "Chao1 abundance lower bound; no params",
      .wants_positive_fingerprint = true,
      .traits = kFingerprintTraits,
      .factory = MakeFingerprintEstimator<Chao1Estimator, SharedChao1Scorer>}));
  check(registry.Register(EstimatorRegistry::Entry{
      .name = "jackknife1",
      .display_name = "JACKKNIFE1",
      .help = "first-order jackknife species estimate; no params",
      .wants_positive_fingerprint = true,
      .traits = kFingerprintTraits,
      .factory = MakeFingerprintEstimator<JackknifeEstimator,
                                          SharedJackknifeScorer>}));
  check(registry.RegisterAlias("jackknife", "jackknife1"));
}

}  // namespace dqm::estimators
