#include "estimators/f_statistics.h"

#include <algorithm>

namespace dqm::estimators {

void FStatistics::RebuildFromCounts(std::span<const uint32_t> species_counts) {
  std::fill(f_.begin(), f_.end(), 0);
  num_species_ = 0;
  total_observations_ = 0;
  for (uint32_t count : species_counts) {
    if (count == 0) continue;
    if (static_cast<size_t>(count) + 2 > f_.size()) f_.resize(count + 2, 0);
    ++f_[count];
    ++num_species_;
    total_observations_ += count;
  }
}

uint64_t FStatistics::SumIiMinus1() const {
  uint64_t sum = 0;
  for (uint32_t freq = 2; freq < f_.size(); ++freq) {
    sum += static_cast<uint64_t>(freq) * (freq - 1) * f_[freq];
  }
  return sum;
}

FStatistics::ShiftedView FStatistics::Shifted(uint32_t s, uint64_t n) const {
  ShiftedView view;
  uint64_t dropped = 0;
  for (uint32_t freq = 1; freq < f_.size(); ++freq) {
    uint64_t count = f_[freq];
    if (count == 0) continue;
    if (freq <= s) {
      dropped += count;
      continue;
    }
    uint32_t shifted = freq - s;
    if (shifted == 1) view.f1 += count;
    view.c += count;
    view.sum_ii1 += static_cast<uint64_t>(shifted) * (shifted - 1) * count;
  }
  view.n = (n >= dropped) ? n - dropped : 0;
  return view;
}

std::vector<std::pair<uint32_t, uint64_t>> FStatistics::histogram() const {
  std::vector<std::pair<uint32_t, uint64_t>> classes;
  for (uint32_t freq = 1; freq < f_.size(); ++freq) {
    if (f_[freq] > 0) classes.emplace_back(freq, f_[freq]);
  }
  return classes;
}

double Chao92Point(uint64_t c, uint64_t f1, uint64_t n, uint64_t sum_ii1,
                   bool skew_correction) {
  if (c == 0) return 0.0;
  if (n == 0 || f1 >= n) {
    // No coverage evidence (all observations are singletons, or nothing
    // observed): the coverage estimate degenerates; report what was seen.
    return static_cast<double>(c);
  }
  double nd = static_cast<double>(n);
  double coverage = 1.0 - static_cast<double>(f1) / nd;
  double d_noskew = static_cast<double>(c) / coverage;
  if (!skew_correction) return d_noskew;
  double gamma2 = 0.0;
  if (n > 1) {
    gamma2 = d_noskew * static_cast<double>(sum_ii1) / (nd * (nd - 1.0)) - 1.0;
    gamma2 = std::max(gamma2, 0.0);
  }
  return d_noskew + static_cast<double>(f1) * gamma2 / coverage;
}

}  // namespace dqm::estimators
