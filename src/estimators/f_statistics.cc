#include "estimators/f_statistics.h"

#include <algorithm>

namespace dqm::estimators {

void FStatistics::AddSingleton() {
  ++f_[1];
  ++num_species_;
  ++total_observations_;
}

void FStatistics::Promote(uint32_t from) {
  DQM_CHECK_GE(from, 1u);
  auto it = f_.find(from);
  DQM_CHECK(it != f_.end() && it->second > 0)
      << "no species at frequency " << from;
  if (--it->second == 0) f_.erase(it);
  ++f_[from + 1];
  ++total_observations_;
}

void FStatistics::Remove(uint32_t freq) {
  auto it = f_.find(freq);
  DQM_CHECK(it != f_.end() && it->second > 0)
      << "no species at frequency " << freq;
  if (--it->second == 0) f_.erase(it);
  --num_species_;
  total_observations_ -= freq;
}

uint64_t FStatistics::f(uint32_t j) const {
  auto it = f_.find(j);
  return it == f_.end() ? 0 : it->second;
}

uint64_t FStatistics::SumIiMinus1() const {
  uint64_t sum = 0;
  for (const auto& [freq, count] : f_) {
    sum += static_cast<uint64_t>(freq) * (freq - 1) * count;
  }
  return sum;
}

FStatistics::ShiftedView FStatistics::Shifted(uint32_t s, uint64_t n) const {
  ShiftedView view;
  uint64_t dropped = 0;
  for (const auto& [freq, count] : f_) {
    if (freq <= s) {
      dropped += count;
      continue;
    }
    uint32_t shifted = freq - s;
    if (shifted == 1) view.f1 += count;
    view.c += count;
    view.sum_ii1 += static_cast<uint64_t>(shifted) * (shifted - 1) * count;
  }
  view.n = (n >= dropped) ? n - dropped : 0;
  return view;
}

double Chao92Point(uint64_t c, uint64_t f1, uint64_t n, uint64_t sum_ii1,
                   bool skew_correction) {
  if (c == 0) return 0.0;
  if (n == 0 || f1 >= n) {
    // No coverage evidence (all observations are singletons, or nothing
    // observed): the coverage estimate degenerates; report what was seen.
    return static_cast<double>(c);
  }
  double nd = static_cast<double>(n);
  double coverage = 1.0 - static_cast<double>(f1) / nd;
  double d_noskew = static_cast<double>(c) / coverage;
  if (!skew_correction) return d_noskew;
  double gamma2 = 0.0;
  if (n > 1) {
    gamma2 = d_noskew * static_cast<double>(sum_ii1) / (nd * (nd - 1.0)) - 1.0;
    gamma2 = std::max(gamma2, 0.0);
  }
  return d_noskew + static_cast<double>(f1) * gamma2 / coverage;
}

}  // namespace dqm::estimators
