#ifndef DQM_ESTIMATORS_SWITCH_TRACKER_H_
#define DQM_ESTIMATORS_SWITCH_TRACKER_H_

#include <cstdint>
#include <vector>

#include "crowd/vote.h"
#include "estimators/f_statistics.h"

namespace dqm::estimators {

/// How consensus switches are detected from the vote sequence.
enum class TiePolicy {
  /// The paper's Eq. (7): a switch is counted at every vote tie
  /// (n+ == n-), plus when the very first vote is positive. The tracked
  /// consensus label toggles at each switch.
  kTieAsSwitch,
  /// A switch is counted only when the *strict* majority label
  /// (n+ > n-) actually changes; ties retain the previous label.
  /// Ablation alternative ("various [tie-breaking] policies", Section 4.1).
  kStrictMajority,
};

/// What `n` means in the switch estimator's coverage term (Section 4.2).
enum class SwitchNMode {
  /// The paper's final choice: all votes on an item from its first switch
  /// onward count ("we use a small modification and simply count all votes
  /// as n", adjusted by the no-op subtraction). Equivalently: every counted
  /// vote contributes one (re)discovery to exactly one switch, so
  /// n = sum_j j * f'_j.
  kAllVotes,
  /// The paper's first (discarded) definition, n = sum_j f'_j — implicitly
  /// restarts sampling at every switch and tends to overestimate. Kept for
  /// the ablation bench.
  kSpeciesSum,
};

/// What `c` counts in Eq. (8).
enum class SwitchCountingMode {
  /// Species reading (default): every switch currently in the fingerprint
  /// is its own species. Under live-only memory this coincides with the
  /// literal Eq. (8) c_switch (one live switch per switched record).
  kPerSwitch,
  /// Literal Eq. (8): c = number of records with at least one switch.
  /// Kept for the ablation bench.
  kPerRecord,
};

/// Which switches stay in the f-statistics (see DESIGN.md, "c_switch
/// reading").
enum class SwitchMemory {
  /// Default: only each item's *live* (most recent) switch is a species.
  /// When the consensus flips again, the superseded switch leaves the
  /// fingerprint together with its rediscovery mass. This is the reading
  /// under which the estimator converges: corrected false positives stop
  /// polluting f1, so xi -> 0 as the consensus stabilizes — the behavior
  /// the paper reports on all three datasets.
  kLiveOnly,
  /// Every switch ever created stays in the fingerprint at its frozen
  /// frequency. Corrected false positives then remain singletons forever
  /// and the remaining-switch estimate keeps a permanent positive bias;
  /// kept for the ablation bench that quantifies exactly that.
  kAllSwitches,
};

/// Aggregated switch statistics in species-estimator form.
struct SwitchStatistics {
  uint64_t c = 0;        // species count (per counting mode)
  uint64_t f1 = 0;       // singleton switches
  uint64_t n = 0;        // observations (per n mode)
  uint64_t sum_ii1 = 0;  // skew moment
  uint64_t observed_switches = 0;  // switch(I), sign-restricted if applicable
};

/// Ground truth for the switch problem: switches still needed for the
/// current majority consensus to reach the true labels (positive =
/// clean->dirty flips needed, negative = dirty->clean).
struct SwitchesNeeded {
  size_t positive = 0;
  size_t negative = 0;
};

/// The consensus state machine behind the SWITCH estimator (Section 4).
///
/// Every item starts with the default label "clean". As votes arrive the
/// tracker detects consensus switches per the configured TiePolicy; each
/// switch is a species, every later vote on the item that does not flip the
/// consensus "rediscovers" the live switch (raising its frequency), and
/// votes before an item's first switch are no-ops that contribute nothing.
/// Positive (clean->dirty) and negative (dirty->clean) switches keep
/// separate f-statistics so the remaining amount of each can be estimated
/// independently (Section 4.3).
class SwitchTracker {
 public:
  struct Config {
    TiePolicy tie_policy = TiePolicy::kTieAsSwitch;
    SwitchNMode n_mode = SwitchNMode::kAllVotes;
    SwitchCountingMode counting = SwitchCountingMode::kPerSwitch;
    SwitchMemory memory = SwitchMemory::kLiveOnly;
    /// Use the gamma^2 skew correction in the switch estimates.
    bool skew_correction = true;
  };

  explicit SwitchTracker(size_t num_items);
  SwitchTracker(size_t num_items, const Config& config);

  /// Consumes one vote (events must arrive in log order).
  void Observe(const crowd::VoteEvent& event);

  /// switch(I) — total observed switches (Eq. 7 under kTieAsSwitch).
  uint64_t TotalSwitches() const { return positive_switches_ + negative_switches_; }
  uint64_t PositiveSwitches() const { return positive_switches_; }
  uint64_t NegativeSwitches() const { return negative_switches_; }

  /// Number of records with at least one switch (literal Eq. 8 c_switch).
  uint64_t ItemsWithSwitches() const { return items_with_switches_; }

  /// The tracker's current consensus label for `item`.
  bool ConsensusDirty(size_t item) const;

  /// Combined / sign-restricted statistics in species-estimator form.
  SwitchStatistics Statistics() const;
  SwitchStatistics PositiveStatistics() const;
  SwitchStatistics NegativeStatistics() const;

  /// D_hat_switch (Eq. 8): estimated total switches as K -> infinity.
  double EstimateTotalSwitches() const;

  /// xi = D_hat_switch - switch(I): expected remaining switches. >= 0.
  double EstimateRemainingSwitches() const;
  /// xi+ / xi- — remaining switches by sign (Section 4.3).
  double EstimateRemainingPositive() const;
  double EstimateRemainingNegative() const;

  const Config& config() const { return config_; }

 private:
  struct ItemState {
    uint32_t pos = 0;
    uint32_t neg = 0;
    bool has_switched = false;
    bool consensus_dirty = false;   // tracked label, default clean
    bool live_positive = false;     // sign of the live (latest) switch
    uint32_t live_freq = 0;         // frequency of the live switch
  };

  /// Applies the tie policy: did this vote (already tallied into `state`)
  /// create a new switch?
  bool DetectSwitch(const ItemState& state) const;

  void StartSwitch(ItemState& state, bool positive);
  void Rediscover(ItemState& state);

  SwitchStatistics BuildStats(const FStatistics& f,
                              uint64_t observed_switches) const;

  Config config_;
  std::vector<ItemState> items_;
  FStatistics positive_f_;
  FStatistics negative_f_;
  uint64_t positive_switches_ = 0;
  uint64_t negative_switches_ = 0;
  uint64_t items_with_switches_ = 0;
};

/// Ground-truth switches needed: compares the strict-majority labels implied
/// by per-item tallies against the true labels. `positive[i]`/`total[i]`
/// come from a ResponseLog; `truth[i]` is the hidden label.
SwitchesNeeded ComputeSwitchesNeeded(const std::vector<uint32_t>& positive,
                                     const std::vector<uint32_t>& total,
                                     const std::vector<bool>& truth);

}  // namespace dqm::estimators

#endif  // DQM_ESTIMATORS_SWITCH_TRACKER_H_
